(* Tests for the network daemon: protocol codec round-trips (qcheck,
   hostile strings included), submit length-check rejection, the
   bounded admission queue (shed, duplicate, force, retry-after), and
   the process-level acceptance scenarios against the real rtt binary:
   a submit --wait whose result is byte-identical to a local solve,
   duplicate coalescing, shed under a full queue, SIGKILL crash safety
   (no accepted job lost, no unaccepted job journaled), and SIGTERM
   drain that still answers in-flight waiters. *)

open Rtt_net

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* protocol codec                                                      *)

let hostile_string_gen = QCheck.Gen.(map Bytes.unsafe_to_string (bytes_size (int_range 0 40)))

let request_gen =
  QCheck.Gen.(
    let s = hostile_string_gen in
    oneof
      [
        map (fun version -> Protocol.Hello { version }) (int_range 0 9);
        map (fun (name, body) -> Protocol.Submit { name; body }) (pair s s);
        map
          (fun (name, bodies) -> Protocol.Submit_many { name; bodies })
          (pair s (list_size (int_range 0 5) s));
        map (fun id -> Protocol.Status { id }) s;
        map (fun id -> Protocol.Wait { id }) s;
        return Protocol.Ping;
        return Protocol.Bye;
        map
          (fun (version, watermark) -> Protocol.Repl_hello { version; watermark })
          (pair (int_range 0 9) (int_range 0 100_000));
        map (fun watermark -> Protocol.Repl_ack { watermark }) (int_range 0 100_000);
        return Protocol.Promote;
        return Protocol.Stats;
        map (fun (sid, body) -> Protocol.Session_open { sid; body }) (pair s (opt s));
        map (fun (sid, op) -> Protocol.Session_mutate { sid; op }) (pair s s);
        map (fun sid -> Protocol.Session_solve { sid }) s;
        map (fun sid -> Protocol.Session_close { sid }) s;
      ])

let response_gen =
  QCheck.Gen.(
    let s = hostile_string_gen in
    let n = int_range 0 10_000 in
    oneof
      [
        map (fun (version, max_frame) -> Protocol.Welcome { version; max_frame }) (pair (int_range 0 9) n);
        map (fun id -> Protocol.Accepted { id }) s;
        map (fun retry_after_ms -> Protocol.Shed { retry_after_ms }) n;
        map (fun (id, json) -> Protocol.Status_is { id; json }) (pair s s);
        map (fun (id, rendered) -> Protocol.Result { id; rendered }) (pair s s);
        map
          (fun (id, error_class, attempts) -> Protocol.Failed { id; error_class; attempts })
          (triple s s (int_range 0 9));
        map (fun (code, msg) -> Protocol.Errored { code; msg }) (pair s s);
        return Protocol.Pong;
        map (fun (version, records) -> Protocol.Repl_welcome { version; records }) (pair (int_range 0 9) n);
        map (fun (seq, line) -> Protocol.Repl_frame { seq; line }) (pair n s);
        map (fun (job, body) -> Protocol.Repl_instance { job; body }) (pair s s);
        map (fun (job, body) -> Protocol.Repl_result { job; body }) (pair s s);
        map (fun (key, body) -> Protocol.Repl_cache { key; body }) (pair s s);
        map (fun json -> Protocol.Stats_is { json }) s;
        return Protocol.Promoting;
        map (fun (sid, revision) -> Protocol.Session_ok { sid; revision }) (pair s n);
        map
          (fun ((sid, fuel), (warm, rendered)) ->
            Protocol.Session_result { sid; fuel; warm; rendered })
          (pair (pair s n) (pair bool s));
      ])

let protocol_props =
  [
    prop "request encode/parse round-trip (hostile strings)" 500
      (QCheck.make ~print:Protocol.encode_request request_gen)
      (fun r -> Protocol.parse_request (Protocol.encode_request r) = Ok r);
    prop "response encode/parse round-trip (hostile strings)" 500
      (QCheck.make ~print:Protocol.encode_response response_gen)
      (fun r -> Protocol.parse_response (Protocol.encode_response r) = Ok r);
    prop "encoded payloads survive the frame layer" 200
      (QCheck.make ~print:Protocol.encode_request request_gen)
      (fun r ->
        let open Rtt_service in
        Frame.unframe (Frame.frame (Protocol.encode_request r)) = Some (Protocol.encode_request r));
    (* the pipelining contract: a client may write many framed requests
       back to back, and the server's incremental reader must recover
       each one in order no matter how the kernel chunks the stream *)
    prop "pipelined frames survive arbitrary chunking" 200
      (QCheck.make
         ~print:(fun (rs, chunk) ->
           Printf.sprintf "chunk=%d [%s]" chunk
             (String.concat " | " (List.map Protocol.encode_request rs)))
         QCheck.Gen.(pair (list_size (int_range 0 8) request_gen) (int_range 1 7)))
      (fun (rs, chunk) ->
        let open Rtt_service in
        let stream =
          String.concat ""
            (List.map (fun r -> Frame.frame (Protocol.encode_request r) ^ "\n") rs)
        in
        let reader = Frame.reader () in
        let got = ref [] in
        let n = String.length stream in
        let rec go i =
          if i < n then begin
            let len = min chunk (n - i) in
            List.iter
              (function
                | `Frame p -> got := Protocol.parse_request p :: !got
                | `Corrupt _ | `Overflow -> got := Error "corrupt" :: !got)
              (Frame.feed reader (String.sub stream i len));
            go (i + len)
          end
        in
        go 0;
        List.rev !got = List.map (fun r -> Ok r) rs && Frame.buffered reader = 0);
  ]

let protocol_units =
  [
    Alcotest.test_case "stats codec round-trips the lp factorization fields" `Quick (fun () ->
        (* the exact JSON the daemon serves: replica stats with the live
           LP engine counters embedded — the codec must carry every new
           factorization field through unscathed *)
        let json =
          Rtt_service.Replica.stats_json
            ~lp:(Rtt_lp.Simplex.lp_stats_json ())
            ~role:"primary" ~records:5 ~sync_replicas:1 ~held:0 ~followers:[ ("unix", 5, 5) ] ()
        in
        (match Protocol.parse_response (Protocol.encode_response (Protocol.Stats_is { json })) with
        | Ok (Protocol.Stats_is { json = json' }) ->
            Alcotest.(check string) "round-trip" json json'
        | _ -> Alcotest.fail "stats response did not round-trip");
        let has key =
          let needle = Printf.sprintf "\"%s\":" key in
          let nl = String.length needle and jl = String.length json in
          let rec scan i = i + nl <= jl && (String.sub json i nl = needle || scan (i + 1)) in
          Alcotest.(check bool) (key ^ " present") true (scan 0)
        in
        List.iter has
          [ "engine"; "pivots"; "warm_accepted"; "warm_rejected"; "refactors"; "etas";
            "eta_peak"; "nnz"; "cells" ]);
    Alcotest.test_case "submit length mismatch is rejected" `Quick (fun () ->
        let good = Protocol.encode_request (Protocol.Submit { name = "n"; body = "vertices 1" }) in
        (* splice a wrong declared length into the otherwise valid frame *)
        let bad =
          match String.split_on_char ' ' good with
          | [ verb; name; _len; body ] -> String.concat " " [ verb; name; "3"; body ]
          | _ -> Alcotest.fail "unexpected submit shape"
        in
        (match Protocol.parse_request bad with
        | Error msg -> Alcotest.(check bool) "mentions mismatch" true (contains ~needle:"mismatch" msg)
        | Ok _ -> Alcotest.fail "length mismatch must not parse"));
    Alcotest.test_case "unknown verbs and bad arity are errors" `Quick (fun () ->
        List.iter
          (fun payload ->
            match Protocol.parse_request payload with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "%S must not parse" payload)
          [ ""; "frobnicate"; "hello"; "hello x"; "submit a b"; "status"; "wait a b"; "ping extra" ]);
    Alcotest.test_case "malformed escapes are errors, not misparses" `Quick (fun () ->
        match Protocol.parse_request "status %zz" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "bad escape must not parse");
    Alcotest.test_case "repl attachment length mismatch is rejected" `Quick (fun () ->
        let good =
          Protocol.encode_response (Protocol.Repl_instance { job = "j"; body = "vertices 1" })
        in
        let bad =
          match String.split_on_char ' ' good with
          | [ verb; job; _len; body ] -> String.concat " " [ verb; job; "3"; body ]
          | _ -> Alcotest.fail "unexpected repl.instance shape"
        in
        (match Protocol.parse_response bad with
        | Error msg -> Alcotest.(check bool) "mentions mismatch" true (contains ~needle:"mismatch" msg)
        | Ok _ -> Alcotest.fail "length mismatch must not parse"));
    Alcotest.test_case "submit-many: batch arity mismatch is rejected" `Quick (fun () ->
        let req = Protocol.Submit_many { name = "batch"; bodies = [ "vertices 1"; ""; "a b" ] } in
        let enc = Protocol.encode_request req in
        Alcotest.(check bool) "round-trips" true (Protocol.parse_request enc = Ok req);
        (* drop the final token: the declared count now exceeds the
           entries present, which must be an arity error, not a
           truncated batch *)
        let tokens = String.split_on_char ' ' enc in
        let short =
          String.concat " " (List.filteri (fun i _ -> i < List.length tokens - 1) tokens)
        in
        (match Protocol.parse_request short with
        | Error msg -> Alcotest.(check bool) "mentions arity" true (contains ~needle:"arity" msg)
        | Ok _ -> Alcotest.fail "arity mismatch must not parse");
        List.iter
          (fun payload ->
            match Protocol.parse_request payload with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "%S must not parse" payload)
          [ "submit-many"; "submit-many n"; "submit-many n x"; "submit-many n 1";
            "submit-many n 1 3"; "submit-many n 2 0  0" ]);
    Alcotest.test_case "submit-many: per-entry length mismatch is rejected" `Quick (fun () ->
        let good =
          Protocol.encode_request (Protocol.Submit_many { name = "n"; bodies = [ "vertices 1" ] })
        in
        let bad =
          match String.split_on_char ' ' good with
          | [ verb; name; count; _len; body ] -> String.concat " " [ verb; name; count; "3"; body ]
          | _ -> Alcotest.fail "unexpected submit-many shape"
        in
        match Protocol.parse_request bad with
        | Error msg -> Alcotest.(check bool) "mentions mismatch" true (contains ~needle:"mismatch" msg)
        | Ok _ -> Alcotest.fail "length mismatch must not parse");
    Alcotest.test_case "shard_of_id: deterministic, in range, hex-prefix routed" `Quick (fun () ->
        (* the hex fast path: the first 7 digest nibbles, mod shards *)
        Alcotest.(check int) "shards=1 is always 0" 0
          (Daemon.shard_of_id ~shards:1 "deadbeefdeadbeefdeadbeefdeadbeef");
        Alcotest.(check int) "hex prefix mod shards" (0xdeadbee mod 4)
          (Daemon.shard_of_id ~shards:4 "deadbeefdeadbeefdeadbeefdeadbeef");
        for shards = 1 to 8 do
          List.iter
            (fun id ->
              let k = Daemon.shard_of_id ~shards id in
              Alcotest.(check bool) "in range" true (k >= 0 && k < shards);
              Alcotest.(check int) "deterministic" k (Daemon.shard_of_id ~shards id))
            [ ""; "x"; "0123456"; "0123456789abcdef"; "not-hex-at-all";
              "ffffffffffffffffffffffffffffffff" ]
        done);
    Alcotest.test_case "session verbs: bad arity is an error" `Quick (fun () ->
        List.iter
          (fun payload ->
            match Protocol.parse_request payload with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "%S must not parse" payload)
          [ "session.open"; "session.open a b"; "session.mutate a"; "session.solve";
            "session.solve a b"; "session.close"; "session.close a b" ]);
    Alcotest.test_case "session.open seed body length mismatch is rejected" `Quick (fun () ->
        let good =
          Protocol.encode_request (Protocol.Session_open { sid = "s"; body = Some "vertices 1" })
        in
        let bad =
          match String.split_on_char ' ' good with
          | [ verb; sid; _len; body ] -> String.concat " " [ verb; sid; "3"; body ]
          | _ -> Alcotest.fail "unexpected session.open shape"
        in
        match Protocol.parse_request bad with
        | Error msg -> Alcotest.(check bool) "mentions mismatch" true (contains ~needle:"mismatch" msg)
        | Ok _ -> Alcotest.fail "length mismatch must not parse");
    Alcotest.test_case "repl verbs: bad arity is an error" `Quick (fun () ->
        List.iter
          (fun payload ->
            match Protocol.parse_request payload with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "%S must not parse" payload)
          [ "repl.hello"; "repl.hello 1"; "repl.hello 1 x"; "repl.ack"; "repl.ack x";
            "promote extra"; "stats extra" ]);
  ]

(* ------------------------------------------------------------------ *)
(* admission queue                                                     *)

let admission_units =
  [
    Alcotest.test_case "admit to capacity, then shed with a hint" `Quick (fun () ->
        let a = Admission.create ~capacity:2 () in
        Alcotest.(check bool) "first" true (Admission.offer a ~id:"a" = `Admitted);
        Alcotest.(check bool) "second" true (Admission.offer a ~id:"b" = `Admitted);
        (match Admission.offer a ~id:"c" with
        | `Shed ms -> Alcotest.(check bool) "hint in [100ms,60s]" true (ms >= 100 && ms <= 60_000)
        | _ -> Alcotest.fail "expected shed");
        Alcotest.(check int) "queued" 2 (Admission.queued a));
    Alcotest.test_case "duplicates never consume a second slot" `Quick (fun () ->
        let a = Admission.create ~capacity:2 () in
        ignore (Admission.offer a ~id:"a");
        Alcotest.(check bool) "dup" true (Admission.offer a ~id:"a" = `Duplicate);
        Alcotest.(check int) "queued" 1 (Admission.queued a);
        (* still a duplicate while in flight *)
        Alcotest.(check (option string)) "take" (Some "a") (Admission.take a);
        Alcotest.(check bool) "dup in flight" true (Admission.offer a ~id:"a" = `Duplicate);
        Alcotest.(check int) "in flight" 1 (Admission.in_flight a));
    Alcotest.test_case "finish frees the slot and feeds the EWMA" `Quick (fun () ->
        let a = Admission.create ~capacity:1 () in
        ignore (Admission.offer a ~id:"a");
        ignore (Admission.take a);
        Admission.finish a ~id:"a" ~elapsed_ms:10_000;
        Alcotest.(check bool) "slot free" true (Admission.offer a ~id:"b" = `Admitted);
        (* one 10 s sample pushes the smoothed hint well above the floor *)
        Alcotest.(check bool) "hint grew" true (Admission.retry_after_ms a > 1_000));
    Alcotest.test_case "force admits a restart backlog past capacity" `Quick (fun () ->
        let a = Admission.create ~capacity:1 () in
        Admission.force a ~id:"a";
        Admission.force a ~id:"b";
        Admission.force a ~id:"a";
        Alcotest.(check int) "both queued, no dup" 2 (Admission.queued a);
        match Admission.offer a ~id:"c" with
        | `Shed _ -> ()
        | _ -> Alcotest.fail "over capacity after force: fresh submits shed");
    Alcotest.test_case "aggregate of one snapshot matches retry_after_ms" `Quick (fun () ->
        let a = Admission.create ~capacity:8 () in
        ignore (Admission.offer a ~id:"a");
        ignore (Admission.offer a ~id:"b");
        ignore (Admission.take a);
        Admission.finish a ~id:"a" ~elapsed_ms:7_300;
        (* the snapshot carries the ewma at millisecond precision, so
           the fleet estimate for a one-shard fleet reproduces the
           local hint up to rounding *)
        let direct = Admission.retry_after_ms a in
        let fleet = Admission.aggregate [ Admission.snapshot a ] in
        Alcotest.(check bool)
          (Printf.sprintf "within 1ms: direct=%d fleet=%d" direct fleet)
          true
          (abs (direct - fleet) <= 1));
    Alcotest.test_case "aggregate skips torn snapshots, clamps when empty" `Quick (fun () ->
        let a = Admission.create ~capacity:8 () in
        ignore (Admission.offer a ~id:"a");
        Admission.finish a ~id:"a" ~elapsed_ms:10_000;
        let good = Admission.aggregate [ Admission.snapshot a ] in
        (* a torn or garbage stat file must not poison the estimate *)
        List.iter
          (fun torn ->
            Alcotest.(check int)
              (Printf.sprintf "torn %S skipped" torn)
              good
              (Admission.aggregate [ torn; Admission.snapshot a ]))
          [ ""; "garbage"; "3"; "-1 5.0"; "3 -2.0"; "x 5.0"; "3 y"; "1 2 3" ];
        (* no parseable snapshot at all: the floor of the clamp range *)
        Alcotest.(check int) "empty clamps to floor" 100 (Admission.aggregate []);
        Alcotest.(check int) "all torn clamps to floor" 100 (Admission.aggregate [ "nope" ]));
    Alcotest.test_case "aggregate spreads occupancy over the fleet" `Quick (fun () ->
        (* two idle shards drain twice as fast as one: with the same
           total occupancy and ewma, the two-shard hint is at most the
           one-shard hint (it halves, modulo the clamp floor) *)
        let a = Admission.create ~capacity:8 () in
        ignore (Admission.offer a ~id:"a");
        ignore (Admission.offer a ~id:"b");
        ignore (Admission.take a);
        Admission.finish a ~id:"a" ~elapsed_ms:20_000;
        let solo = Admission.aggregate [ Admission.snapshot a ] in
        let idle = "0 0.000" in
        let fleet = Admission.aggregate [ Admission.snapshot a; idle ] in
        Alcotest.(check bool)
          (Printf.sprintf "fleet hint %d <= solo hint %d" fleet solo)
          true (fleet <= solo);
        Alcotest.(check bool) "still clamped to range" true (fleet >= 100 && fleet <= 60_000));
    Alcotest.test_case "requeue returns an in-flight job to the tail" `Quick (fun () ->
        let a = Admission.create ~capacity:4 () in
        ignore (Admission.offer a ~id:"a");
        ignore (Admission.offer a ~id:"b");
        Alcotest.(check (option string)) "take a" (Some "a") (Admission.take a);
        Admission.requeue a ~id:"a";
        Alcotest.(check (option string)) "b first" (Some "b") (Admission.take a);
        Alcotest.(check (option string)) "then a again" (Some "a") (Admission.take a);
        (* untracked ids are not resurrected *)
        Admission.requeue a ~id:"ghost";
        Alcotest.(check (option string)) "no ghost" None (Admission.take a));
  ]

(* ------------------------------------------------------------------ *)
(* process-level acceptance                                            *)

let rtt_exe =
  (* under `dune runtest` the cwd is _build/default/test; under a bare
     `dune exec` it is the workspace root *)
  let candidates =
    [
      Filename.concat (Filename.dirname (Sys.getcwd ())) "bin/rtt.exe";
      Filename.concat (Sys.getcwd ()) "_build/default/bin/rtt.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let fresh_dir =
  let counter = ref 0 in
  fun tag ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "rtt_net_%s_%d_%d" tag (Unix.getpid ()) !counter)
    in
    if Sys.file_exists dir then
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
    else Unix.mkdir dir 0o755;
    dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

(* run rtt to completion, capturing stdout *)
let run_rtt args =
  let out = Filename.temp_file "rtt_net_out" ".txt" in
  let fd = Unix.openfile out [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid = Unix.create_process rtt_exe (Array.of_list (rtt_exe :: args)) Unix.stdin fd null in
  Unix.close fd;
  Unix.close null;
  let code =
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED c -> c
    | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> 255
  in
  let text = read_file out in
  Sys.remove out;
  (code, text)

let spawn_rtt args =
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid = Unix.create_process rtt_exe (Array.of_list (rtt_exe :: args)) Unix.stdin null null in
  Unix.close null;
  pid

let wait_exit pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED c -> `Exited c
  | _, Unix.WSIGNALED s -> `Signaled s
  | _, Unix.WSTOPPED _ -> `Stopped
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> `Reaped

let wait_for ?(timeout = 60.0) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () -. t0 > timeout then false
    else begin
      ignore (Unix.select [] [] [] 0.01);
      go ()
    end
  in
  go ()

let gen_instance ~seed ~n path =
  let code, text = run_rtt [ "gen"; "-k"; "hub"; "-n"; string_of_int n; "--seed"; string_of_int seed ] in
  Alcotest.(check int) "gen exits 0" 0 code;
  write_file path text

let spawn_daemon ?(extra = []) ~spool ~socket () =
  let pid =
    spawn_rtt ([ "daemon"; "--spool"; spool; "--socket"; socket; "-b"; "3" ] @ extra)
  in
  if not (wait_for (fun () -> Sys.file_exists socket)) then begin
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    Alcotest.fail "daemon never created its socket"
  end;
  pid

let kill_quietly pid signal = try Unix.kill pid signal with Unix.Unix_error _ -> ()

let line_with ~needle text =
  List.find_opt (fun l -> contains ~needle l) (String.split_on_char '\n' text)

(* pull a ["key":"value"] string field out of one line of jobs --json *)
let json_field key line =
  let needle = Printf.sprintf {|"%s":"|} key in
  let n = String.length needle and h = String.length line in
  let rec find i =
    if i + n > h then None else if String.sub line i n = needle then Some (i + n) else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start -> (
      match String.index_from_opt line start '"' with
      | None -> None
      | Some stop -> Some (String.sub line start (stop - start)))

(* the (id, state) outcomes a spool's journals record, sorted — the
   unit of comparison between a flat and a sharded deployment *)
let outcomes_of spool =
  let code, json = run_rtt [ "jobs"; spool; "--json" ] in
  Alcotest.(check int) "jobs --json exits 0" 0 code;
  String.split_on_char '\n' json
  |> List.filter_map (fun line ->
         match (json_field "id" line, json_field "state" line) with
         | Some id, Some state -> Some (id, state)
         | _ -> None)
  |> List.sort compare

let process_units =
  [
    Alcotest.test_case "submit --wait is byte-identical to a local solve" `Slow (fun () ->
        let spool = fresh_dir "e2e" in
        let socket = Filename.concat spool "d.sock" in
        let inst = Filename.concat spool "instance.txt" in
        gen_instance ~seed:7 ~n:16 inst;
        let daemon = spawn_daemon ~spool ~socket () in
        Fun.protect
          ~finally:(fun () ->
            kill_quietly daemon Sys.sigkill;
            ignore (wait_exit daemon))
          (fun () ->
            let net_code, net_out =
              run_rtt [ "submit"; inst; "--socket"; socket; "--wait"; "--timeout"; "60" ]
            in
            let local_code, local_out = run_rtt [ "solve"; inst; "--fallback"; "-b"; "3" ] in
            Alcotest.(check int) "daemon result exit 0" 0 net_code;
            Alcotest.(check int) "local solve exit 0" 0 local_code;
            Alcotest.(check string) "byte-identical output" local_out net_out;
            (* resubmission coalesces onto the same durable job id *)
            let c1, id1 = run_rtt [ "submit"; inst; "--socket"; socket ] in
            let c2, id2 = run_rtt [ "submit"; inst; "--socket"; socket ] in
            Alcotest.(check int) "resubmit ok" 0 c1;
            Alcotest.(check int) "resubmit ok" 0 c2;
            Alcotest.(check string) "duplicate submissions share one id" id1 id2;
            let id = String.trim id1 in
            (* daemon status and spool jobs --json agree on the rendering *)
            let sc, sjson = run_rtt [ "status"; id; "--socket"; socket ] in
            Alcotest.(check int) "status exit 0" 0 sc;
            Alcotest.(check bool) "status says done" true
              (contains ~needle:{|"state":"done"|} sjson);
            let jc, jjson = run_rtt [ "jobs"; spool; "--json" ] in
            Alcotest.(check int) "jobs --json exit 0" 0 jc;
            (match line_with ~needle:id jjson with
            | Some line ->
                Alcotest.(check string) "one serializer for both views" (String.trim sjson)
                  (String.trim line)
            | None -> Alcotest.fail "submitted job missing from rtt jobs --json");
            (* unknown jobs: state unknown, exit 43 *)
            let uc, ujson = run_rtt [ "status"; "feedfacedeadbeef"; "--socket"; socket ] in
            Alcotest.(check int) "unknown job exits 43" 43 uc;
            Alcotest.(check bool) "unknown state" true
              (contains ~needle:{|"state":"unknown"|} ujson)));
    Alcotest.test_case "full admission queue sheds instead of hanging" `Slow (fun () ->
        let spool = fresh_dir "shed" in
        let socket = Filename.concat spool "d.sock" in
        (* an exact-only chain with --deadline-fuel 1 fails transiently
           on every attempt (no baseline rung to degrade to), and the
           huge retry budget keeps the first job churning: it stays
           tracked by admission for the whole test, so with --queue 1
           every later submission must shed deterministically *)
        let daemon =
          spawn_daemon ~spool ~socket
            ~extra:
              [ "--queue"; "1"; "--max-attempts"; "100000"; "--deadline-fuel"; "1";
                "--fallback"; "exact" ]
            ()
        in
        Fun.protect
          ~finally:(fun () ->
            kill_quietly daemon Sys.sigkill;
            ignore (wait_exit daemon))
          (fun () ->
            let occupant = Filename.concat spool "occupant.txt" in
            let late = Filename.concat spool "late.txt" in
            (* distinct sizes, not just seeds: the hub generator has few
               shapes per hub count, and [late] coalescing with
               [occupant] would defeat the shed assertion *)
            gen_instance ~seed:11 ~n:16 occupant;
            gen_instance ~seed:12 ~n:24 late;
            let c0, _ = run_rtt [ "submit"; occupant; "--socket"; socket ] in
            Alcotest.(check int) "occupant admitted" 0 c0;
            let c1, _ = run_rtt [ "submit"; late; "--socket"; socket ] in
            Alcotest.(check int) "second submission shed (exit 41)" 41 c1;
            (* a duplicate of the occupant still coalesces, full or not *)
            let c2, _ = run_rtt [ "submit"; occupant; "--socket"; socket ] in
            Alcotest.(check int) "duplicate coalesces through a full queue" 0 c2));
    Alcotest.test_case "SIGKILL: accepted jobs survive, journal never leads the spool" `Slow
      (fun () ->
        let spool = fresh_dir "crash" in
        let socket = Filename.concat spool "d.sock" in
        let daemon = spawn_daemon ~spool ~socket () in
        let accepted = ref [] in
        Fun.protect
          ~finally:(fun () ->
            kill_quietly daemon Sys.sigkill;
            ignore (wait_exit daemon))
          (fun () ->
            for i = 0 to 5 do
              let inst = Filename.concat spool (Printf.sprintf "in_%d.txt" i) in
              (* n = 8*(i+1): one extra hub per instance, so the six
                 digests are distinct by construction *)
              gen_instance ~seed:(20 + i) ~n:(8 * (i + 1)) inst;
              let code, out = run_rtt [ "submit"; inst; "--socket"; socket ] in
              Alcotest.(check int) "accepted" 0 code;
              accepted := String.trim out :: !accepted
            done;
            (* kill the daemon mid-stream — accepted jobs are already
               durable (instance file + journaled Queued) by contract *)
            kill_quietly daemon Sys.sigkill;
            ignore (wait_exit daemon));
        (* invariant: every journaled job has its instance file — the
           journal must never get ahead of the spool *)
        let jobs_of () =
          let _, json = run_rtt [ "jobs"; spool; "--json" ] in
          List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' json)
        in
        List.iter
          (fun line ->
            match String.index_opt line ':' with
            | None -> ()
            | Some _ ->
                let prefix = {|{"id":"|} in
                if String.length line > String.length prefix then begin
                  let rest = String.sub line 7 (String.length line - 7) in
                  let id = String.sub rest 0 (String.index rest '"') in
                  Alcotest.(check bool)
                    (Printf.sprintf "journaled %s has an instance file" id)
                    true
                    (Sys.file_exists (Filename.concat spool (id ^ ".rtt")))
                end)
          (jobs_of ());
        (* restart on the same spool and drain: no accepted job lost.
           SIGKILL left the old socket file behind; remove it so the
           file reappearing means the new daemon has actually bound
           (spawn_daemon polls for existence, not connectability) *)
        if Sys.file_exists socket then Sys.remove socket;
        let daemon2 = spawn_daemon ~spool ~socket () in
        Fun.protect
          ~finally:(fun () ->
            kill_quietly daemon2 Sys.sigkill;
            ignore (wait_exit daemon2))
          (fun () ->
            List.iter
              (fun id ->
                let code, out =
                  run_rtt [ "submit"; Filename.concat spool (id ^ ".rtt"); "--socket"; socket;
                            "--wait"; "--timeout"; "60" ]
                in
                Alcotest.(check int) (Printf.sprintf "job %s completes after restart" id) 0 code;
                Alcotest.(check bool) "result is a solve rendering" true
                  (contains ~needle:"makespan" out))
              !accepted));
    Alcotest.test_case "SIGTERM drain answers in-flight waiters, exits 0" `Slow (fun () ->
        let spool = fresh_dir "drain" in
        let socket = Filename.concat spool "d.sock" in
        let inst = Filename.concat spool "instance.txt" in
        gen_instance ~seed:31 ~n:20 inst;
        let daemon = spawn_daemon ~spool ~socket () in
        Fun.protect
          ~finally:(fun () ->
            kill_quietly daemon Sys.sigkill;
            ignore (wait_exit daemon))
          (fun () ->
            (* a waiter in flight when the drain starts *)
            let out = Filename.concat spool "waiter.out" in
            let fd = Unix.openfile out [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
            let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
            let waiter =
              Unix.create_process rtt_exe
                [| rtt_exe; "submit"; inst; "--socket"; socket; "--wait"; "--timeout"; "60" |]
                Unix.stdin fd null
            in
            Unix.close fd;
            Unix.close null;
            ignore (Unix.select [] [] [] 0.2);
            kill_quietly daemon Sys.sigterm;
            (match wait_exit waiter with
            | `Exited 0 -> ()
            | outcome ->
                Alcotest.failf "waiter should be answered through the drain, got %s"
                  (match outcome with
                  | `Exited c -> Printf.sprintf "exit %d" c
                  | `Signaled s -> Printf.sprintf "signal %d" s
                  | `Stopped -> "stopped"
                  | `Reaped -> "already reaped"));
            Alcotest.(check bool) "waiter printed a result" true
              (contains ~needle:"makespan" (read_file out));
            (match wait_exit daemon with
            | `Exited 0 -> ()
            | `Exited c -> Alcotest.failf "drained daemon must exit 0, got %d" c
            | _ -> Alcotest.fail "daemon killed by signal");
            (* a drained daemon sheds new submissions rather than
               accepting work it will never run — and after exit, the
               socket file is gone *)
            Alcotest.(check bool) "socket removed" false (Sys.file_exists socket)));
    Alcotest.test_case "shards=4 journal outcomes equal shards=1, exactly-once per shard" `Slow
      (fun () ->
        let flat = fresh_dir "flat" in
        let sharded = fresh_dir "sharded" in
        let sock_flat = Filename.concat flat "d.sock" in
        let sock_sharded = Filename.concat sharded "d.sock" in
        let insts =
          List.map
            (fun i ->
              let p = Filename.concat flat (Printf.sprintf "in_%d.txt" i) in
              (* distinct hub counts keep the five digests distinct *)
              gen_instance ~seed:(40 + i) ~n:(8 * (i + 1)) p;
              p)
            [ 0; 1; 2; 3; 4 ]
        in
        let d_flat = spawn_daemon ~spool:flat ~socket:sock_flat () in
        let d_sharded =
          spawn_daemon ~extra:[ "--shards"; "4" ] ~spool:sharded ~socket:sock_sharded ()
        in
        Fun.protect
          ~finally:(fun () ->
            kill_quietly d_flat Sys.sigkill;
            ignore (wait_exit d_flat);
            kill_quietly d_sharded Sys.sigkill;
            ignore (wait_exit d_sharded))
          (fun () ->
            let submit sock inst =
              let code, out =
                run_rtt [ "submit"; inst; "--socket"; sock; "--wait"; "--timeout"; "120" ]
              in
              Alcotest.(check int) (Printf.sprintf "submit --wait %s ok" inst) 0 code;
              out
            in
            List.iter
              (fun inst ->
                let o_flat = submit sock_flat inst in
                let o_sharded = submit sock_sharded inst in
                Alcotest.(check string) "same rendering from either topology" o_flat o_sharded)
              insts;
            (* a second pass over the sharded fleet: every digest must
               coalesce onto its owner's existing job, wherever the
               accepting shard was *)
            List.iter (fun inst -> ignore (submit sock_sharded inst)) insts;
            kill_quietly d_flat Sys.sigterm;
            kill_quietly d_sharded Sys.sigterm;
            (match wait_exit d_flat with
            | `Exited 0 -> ()
            | _ -> Alcotest.fail "flat daemon must drain to exit 0");
            match wait_exit d_sharded with
            | `Exited 0 -> ()
            | _ -> Alcotest.fail "sharded daemon must drain to exit 0");
        (* per fingerprint, both deployments journaled the same outcome *)
        let o_flat = outcomes_of flat in
        let o_sharded = outcomes_of sharded in
        Alcotest.(check (list (pair string string)))
          "same (id, state) outcomes either way" o_flat o_sharded;
        Alcotest.(check int) "five distinct jobs" 5 (List.length o_sharded);
        List.iter
          (fun (_, state) -> Alcotest.(check string) "all done" "done" state)
          o_sharded;
        (* exactly-once under sharding: each job's instance file lives
           in exactly one shard spool, and that shard is the one the
           router names — no double-journaling, no orphan copies *)
        let shard_dirs =
          Sys.readdir sharded |> Array.to_list
          |> List.filter (fun d ->
                 String.length d > 6
                 && String.sub d 0 6 = "shard-"
                 && Sys.is_directory (Filename.concat sharded d))
          |> List.sort compare
        in
        Alcotest.(check (list string)) "four shard spools"
          [ "shard-0"; "shard-1"; "shard-2"; "shard-3" ] shard_dirs;
        List.iter
          (fun (id, _) ->
            let owners =
              List.filter
                (fun d -> Sys.file_exists (Filename.concat (Filename.concat sharded d) (id ^ ".rtt")))
                shard_dirs
            in
            Alcotest.(check (list string))
              (Printf.sprintf "job %s owned by exactly the shard the router names" id)
              [ Printf.sprintf "shard-%d" (Daemon.shard_of_id ~shards:4 id) ]
              owners)
          o_sharded);
    Alcotest.test_case "session: SIGKILL mid-mutation-stream replays to the uninterrupted answer"
      `Slow (fun () ->
        (* the same six mutations, streamed into two daemons; one of
           them is SIGKILLed halfway through the stream and restarted.
           The journaled session must replay and the final solve must
           render byte-identically to the never-interrupted run *)
        let first = [ [ "add-job"; "0:6"; "1:3" ]; [ "add-job"; "0:4"; "2:1" ];
                      [ "add-job"; "0:5"; "1:2" ] ]
        and rest = [ [ "add-edge"; "0"; "1" ]; [ "add-edge"; "1"; "2" ]; [ "set-budget"; "3" ] ]
        in
        let mutate sock words =
          run_rtt ([ "session"; "mutate"; "s1"; "--socket"; sock ] @ words)
        in
        let mutate_ok sock words =
          let code, _ = mutate sock words in
          Alcotest.(check int) (String.concat " " ("mutate" :: words)) 0 code
        in
        let solve sock =
          let code, out = run_rtt [ "session"; "solve"; "s1"; "--socket"; sock ] in
          Alcotest.(check int) "session solve exits 0" 0 code;
          Alcotest.(check bool) "solve rendered an answer" true (contains ~needle:"makespan" out);
          out
        in
        (* control: all six mutations, no interruption *)
        let control = fresh_dir "sess_ctl" in
        let sock_c = Filename.concat control "d.sock" in
        let d_c = spawn_daemon ~spool:control ~socket:sock_c () in
        let expected =
          Fun.protect
            ~finally:(fun () ->
              kill_quietly d_c Sys.sigkill;
              ignore (wait_exit d_c))
            (fun () ->
              let code, _ = run_rtt [ "session"; "open"; "s1"; "--socket"; sock_c ] in
              Alcotest.(check int) "open ok" 0 code;
              List.iter (mutate_ok sock_c) (first @ rest);
              solve sock_c)
        in
        (* crash run: three mutations land, the daemon dies, a restart
           replays them, and the stream continues where it stopped *)
        let spool = fresh_dir "sess_crash" in
        let sock = Filename.concat spool "d.sock" in
        let d1 = spawn_daemon ~spool ~socket:sock () in
        let got =
          Fun.protect
            ~finally:(fun () ->
              kill_quietly d1 Sys.sigkill;
              ignore (wait_exit d1))
            (fun () ->
              let code, _ = run_rtt [ "session"; "open"; "s1"; "--socket"; sock ] in
              Alcotest.(check int) "open ok" 0 code;
              List.iter (mutate_ok sock) first;
              kill_quietly d1 Sys.sigkill;
              ignore (wait_exit d1);
              if Sys.file_exists sock then Sys.remove sock;
              let d2 = spawn_daemon ~spool ~socket:sock () in
              Fun.protect
                ~finally:(fun () ->
                  kill_quietly d2 Sys.sigkill;
                  ignore (wait_exit d2))
                (fun () ->
                  (* no explicit reopen: the restarted daemon reattaches
                     the journaled session on first use *)
                  List.iter (mutate_ok sock) rest;
                  solve sock))
        in
        Alcotest.(check string) "crash-replayed answer is byte-identical" expected got);
    Alcotest.test_case "session: an injected mutate drop loses nothing but the ack" `Slow
      (fun () ->
        let spool = fresh_dir "sess_fault" in
        let socket = Filename.concat spool "d.sock" in
        (* the first two mutate probes pass, the third fires and disarms *)
        let daemon =
          spawn_daemon ~spool ~socket ~extra:[ "--inject"; "session.mutate.drop:2" ] ()
        in
        Fun.protect
          ~finally:(fun () ->
            kill_quietly daemon Sys.sigkill;
            ignore (wait_exit daemon))
          (fun () ->
            let mutate words = run_rtt ([ "session"; "mutate"; "s1"; "--socket"; socket ] @ words) in
            let code, _ = run_rtt [ "session"; "open"; "s1"; "--socket"; socket ] in
            Alcotest.(check int) "open ok" 0 code;
            let c1, o1 = mutate [ "set-budget"; "2" ] in
            Alcotest.(check int) "first mutate ok" 0 c1;
            Alcotest.(check bool) "revision 1" true (contains ~needle:"revision 1" o1);
            let c2, _ = mutate [ "add-job"; "0:3" ] in
            Alcotest.(check int) "second mutate ok" 0 c2;
            let c3, _ = mutate [ "add-job"; "0:2"; "1:1" ] in
            Alcotest.(check bool) "injected drop surfaces as an error" true (c3 <> 0);
            (* the drop happened before journaling: the session is
               exactly as it was, so the retry lands as revision 3 *)
            let c4, o4 = mutate [ "add-job"; "0:2"; "1:1" ] in
            Alcotest.(check int) "retry ok" 0 c4;
            Alcotest.(check bool) "retry is revision 3" true (contains ~needle:"revision 3" o4);
            let sc, sout = run_rtt [ "session"; "solve"; "s1"; "--socket"; socket ] in
            Alcotest.(check int) "solve ok" 0 sc;
            Alcotest.(check bool) "solve answers" true (contains ~needle:"makespan" sout)));
  ]

let () =
  Alcotest.run "net"
    [
      ("protocol-props", protocol_props);
      ("protocol", protocol_units);
      ("admission", admission_units);
      ("process", process_units);
    ]
