(* Tests for Rtt_budget.Budget's context discipline: nesting of fuel
   contexts, unmetered sections inside metered ones, restoration on
   exceptional exit, and the checkpoint sink plumbing the serving layer
   relies on. *)

open Rtt_budget
open Rtt_engine

let spin ~stage n =
  for _ = 1 to n do
    Budget.tick ~stage
  done

let exhausts f =
  match f () with
  | exception Budget.Fuel_exhausted _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* fuel context nesting                                                *)

let fuel_units =
  [
    Alcotest.test_case "with_fuel meters exactly n ticks" `Quick (fun () ->
        Budget.with_fuel (Some 5) (fun () -> spin ~stage:"t" 5);
        Alcotest.(check bool) "n+1-th tick exhausts" true
          (exhausts (fun () -> Budget.with_fuel (Some 5) (fun () -> spin ~stage:"t" 6))));
    Alcotest.test_case "nested with_fuel: inner budget is independent" `Quick (fun () ->
        Budget.with_fuel (Some 3) (fun () ->
            spin ~stage:"outer" 2;
            (* a fresh inner context: its 10 ticks do not touch the
               outer context's single remaining unit *)
            Budget.with_fuel (Some 10) (fun () -> spin ~stage:"inner" 10);
            spin ~stage:"outer" 1);
        Alcotest.(check bool) "outer still exhausts at its own limit" true
          (exhausts (fun () ->
               Budget.with_fuel (Some 3) (fun () ->
                   spin ~stage:"outer" 2;
                   Budget.with_fuel (Some 10) (fun () -> spin ~stage:"inner" 10);
                   spin ~stage:"outer" 2))));
    Alcotest.test_case "inner exhaustion does not charge the outer context" `Quick (fun () ->
        Budget.with_fuel (Some 4) (fun () ->
            (match Budget.with_fuel (Some 2) (fun () -> spin ~stage:"inner" 3) with
            | exception Budget.Fuel_exhausted { stage; spent } ->
                Alcotest.(check string) "stage" "inner" stage;
                (* the raising tick itself is counted *)
                Alcotest.(check int) "spent" 3 spent
            | () -> Alcotest.fail "inner should exhaust");
            (* the outer context was restored with all 4 units intact *)
            spin ~stage:"outer" 4));
    Alcotest.test_case "spent reports the innermost context" `Quick (fun () ->
        Alcotest.(check int) "no context" 0 (Budget.spent ());
        Budget.with_fuel (Some 10) (fun () ->
            spin ~stage:"o" 3;
            Budget.with_fuel (Some 10) (fun () ->
                spin ~stage:"i" 1;
                Alcotest.(check int) "inner" 1 (Budget.spent ()));
            Alcotest.(check int) "outer restored" 3 (Budget.spent ())));
    Alcotest.test_case "with_fuel None is unmetered but probes fire" `Quick (fun () ->
        Faults.reset ();
        Faults.arm ~after:0 Faults.Flow_abort;
        Budget.with_fuel None (fun () ->
            spin ~stage:"t" 10_000;
            Alcotest.(check bool) "probe fires" true
              (Budget.probe ~site:(Faults.key Faults.Flow_abort)));
        Faults.reset ());
    Alcotest.test_case "with_fuel (Some 0) exhausts on the first tick" `Quick (fun () ->
        Budget.with_fuel (Some 0) (fun () -> ());
        Alcotest.(check bool) "first tick" true
          (exhausts (fun () -> Budget.with_fuel (Some 0) (fun () -> spin ~stage:"t" 1))));
  ]

(* ------------------------------------------------------------------ *)
(* unmetered sections                                                  *)

let unmetered_units =
  [
    Alcotest.test_case "unmetered inside metered consumes nothing" `Quick (fun () ->
        Budget.with_fuel (Some 3) (fun () ->
            spin ~stage:"m" 2;
            Budget.unmetered (fun () -> spin ~stage:"free" 10_000);
            Alcotest.(check int) "spent unchanged" 2 (Budget.spent ());
            spin ~stage:"m" 1));
    Alcotest.test_case "unmetered preserves armed fault trigger counts" `Quick (fun () ->
        Faults.reset ();
        Faults.arm ~after:2 Faults.Lp_infeasible;
        let site = Faults.key Faults.Lp_infeasible in
        Budget.unmetered (fun () ->
            (* probes inside an unmetered section neither fire nor count *)
            for _ = 1 to 50 do
              Alcotest.(check bool) "no fire" false (Budget.probe ~site)
            done);
        Alcotest.(check bool) "still armed" true (Faults.armed Faults.Lp_infeasible);
        (* the trigger count survives intact: passes twice, fires third *)
        Alcotest.(check bool) "pass 1" false (Budget.probe ~site);
        Alcotest.(check bool) "pass 2" false (Budget.probe ~site);
        Alcotest.(check bool) "fires" true (Budget.probe ~site);
        Faults.reset ());
    Alcotest.test_case "metering resumes after unmetered raises" `Quick (fun () ->
        Budget.with_fuel (Some 2) (fun () ->
            (try Budget.unmetered (fun () -> failwith "boom") with Failure _ -> ());
            spin ~stage:"m" 2);
        Alcotest.(check bool) "restored context still meters" true
          (exhausts (fun () ->
               Budget.with_fuel (Some 2) (fun () ->
                   (try Budget.unmetered (fun () -> failwith "boom") with Failure _ -> ());
                   spin ~stage:"m" 3))));
    Alcotest.test_case "context restored when the metered thunk raises" `Quick (fun () ->
        (try Budget.with_fuel (Some 7) (fun () -> spin ~stage:"t" 1; failwith "boom")
         with Failure _ -> ());
        Alcotest.(check int) "no lingering context" 0 (Budget.spent ());
        (* ticks outside any context are free again *)
        spin ~stage:"t" 10_000);
  ]

(* ------------------------------------------------------------------ *)
(* checkpoint offers                                                   *)

let checkpoint_units =
  [
    Alcotest.test_case "sink fires once per quota of ticks" `Quick (fun () ->
        let got = ref [] in
        Budget.with_checkpoint ~every:10 (fun s -> got := s :: !got) (fun () ->
            Budget.with_fuel (Some 100) (fun () ->
                for i = 1 to 35 do
                  Budget.tick ~stage:"t";
                  Budget.checkpoint (fun () -> string_of_int i)
                done));
        Alcotest.(check (list string)) "snapshots at ticks 10/20/30" [ "30"; "20"; "10" ] !got);
    Alcotest.test_case "offers are lazy: closure not forced below quota" `Quick (fun () ->
        let forced = ref false in
        Budget.with_checkpoint ~every:100 (fun _ -> ()) (fun () ->
            Budget.with_fuel (Some 100) (fun () ->
                for _ = 1 to 50 do
                  Budget.tick ~stage:"t";
                  Budget.checkpoint (fun () -> forced := true; "")
                done));
        Alcotest.(check bool) "not forced" false !forced);
    Alcotest.test_case "no sink, no effect; unmetered suppresses offers" `Quick (fun () ->
        Budget.with_fuel (Some 10) (fun () ->
            Budget.tick ~stage:"t";
            Budget.checkpoint (fun () -> Alcotest.fail "no sink installed"));
        Budget.with_checkpoint ~every:1 (fun _ -> Alcotest.fail "unmetered must not offer")
          (fun () ->
            Budget.unmetered (fun () ->
                spin ~stage:"t" 10;
                Budget.checkpoint (fun () -> "s"))));
    Alcotest.test_case "a raising sink propagates and uninstalls cleanly" `Quick (fun () ->
        let r =
          match
            Budget.with_checkpoint ~every:1 (fun _ -> failwith "shutdown") (fun () ->
                Budget.with_fuel (Some 10) (fun () ->
                    Budget.tick ~stage:"t";
                    Budget.checkpoint (fun () -> "s");
                    "unreachable"))
          with
          | exception Failure m -> m
          | s -> s
        in
        Alcotest.(check string) "escaped" "shutdown" r;
        (* the sink is gone afterwards *)
        Budget.with_fuel (Some 10) (fun () ->
            Budget.tick ~stage:"t";
            Budget.checkpoint (fun () -> Alcotest.fail "sink leaked")));
    Alcotest.test_case "with_checkpoint rejects a non-positive quota" `Quick (fun () ->
        Alcotest.check_raises "zero" (Invalid_argument "Budget.with_checkpoint: every must be positive")
          (fun () -> Budget.with_checkpoint ~every:0 (fun _ -> ()) (fun () -> ())));
  ]

let () =
  Alcotest.run "budget"
    [
      ("fuel", fuel_units);
      ("unmetered", unmetered_units);
      ("checkpoint", checkpoint_units);
    ]
