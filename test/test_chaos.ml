(* Tests for the chaos harness itself: schedule determinism and string
   round-tripping, the shrinker against a pure fake check, and real
   seeded runs of both workloads — including explicit crash schedules
   (a journal fsync failure mid-drain) that force the harness through
   its crash/recovery path. *)

open Rtt_engine
open Rtt_service

let prop name count arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let sched = Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Chaos.schedule_to_string s))
    ( = )

let schedule_units =
  [
    prop "schedule_of_seed: deterministic, 1-3 distinct arms, after in [0,25]" 200
      QCheck.(pair small_nat bool)
      (fun (seed, nodes) ->
        let s = Chaos.schedule_of_seed ~nodes seed in
        let again = Chaos.schedule_of_seed ~nodes seed in
        let sites = List.map fst s in
        s = again
        && List.length s >= 1
        && List.length s <= 3
        && List.length (List.sort_uniq compare sites) = List.length sites
        && List.for_all (fun (_, after) -> after >= 0 && after <= 25) s);
    prop "schedule string round-trips" 200 QCheck.(pair small_nat bool)
      (fun (seed, nodes) ->
        let s = Chaos.schedule_of_seed ~nodes seed in
        Chaos.schedule_of_string (Chaos.schedule_to_string s) = Ok s);
    Alcotest.test_case "schedule_of_string rejects junk" `Quick (fun () ->
        let bad s = Alcotest.(check bool) s true
            (Result.is_error (Chaos.schedule_of_string s))
        in
        bad "not-a-site:0";
        bad "disk.fsync-fail:x";
        bad "disk.fsync-fail:-1";
        (* a bare site is shorthand for trigger count 0 *)
        Alcotest.(check bool) "bare site defaults to 0" true
          (Chaos.schedule_of_string "disk.fsync-fail"
          = Ok [ (Faults.Disk_fsync_fail, 0) ]));
    Alcotest.test_case "replication sites only appear with ~nodes" `Quick (fun () ->
        let repl = [ Faults.Repl_frame_drop; Faults.Repl_ack_delay ] in
        for seed = 0 to 199 do
          List.iter
            (fun (site, _) ->
              Alcotest.(check bool)
                (Printf.sprintf "seed %d: %s is inproc-safe" seed (Faults.name site))
                false (List.mem site repl))
            (Chaos.schedule_of_seed ~nodes:false seed)
        done);
  ]

(* the shrinker is pure control flow — test it against a fake check
   where "failing" means "still arms disk.eio" *)
let shrink_units =
  [
    Alcotest.test_case "shrink drops irrelevant arms and halves counts" `Quick (fun () ->
        let check s =
          match List.assoc_opt Faults.Disk_eio s with
          | Some _ -> Error "boom"
          | None -> Ok ()
        in
        let minimal, reason =
          Chaos.shrink ~check
            [ (Faults.Disk_enospc, 7); (Faults.Disk_eio, 12); (Faults.Fuel_zero, 3) ]
            "boom"
        in
        Alcotest.(check string) "reason survives" "boom" reason;
        Alcotest.(check sched) "minimal" [ (Faults.Disk_eio, 0) ] minimal);
    Alcotest.test_case "shrink keeps arms the failure needs" `Quick (fun () ->
        let check s =
          if List.mem_assoc Faults.Disk_eio s && List.mem_assoc Faults.Fuel_zero s then
            Error "pair"
          else Ok ()
        in
        let minimal, _ =
          Chaos.shrink ~check
            [ (Faults.Disk_enospc, 1); (Faults.Disk_eio, 8); (Faults.Fuel_zero, 2) ]
            "pair"
        in
        Alcotest.(check bool) "both kept" true
          (List.mem_assoc Faults.Disk_eio minimal
          && List.mem_assoc Faults.Fuel_zero minimal);
        Alcotest.(check bool) "bystander dropped" false
          (List.mem_assoc Faults.Disk_enospc minimal));
  ]

let rtt_exe =
  let candidates =
    [
      Filename.concat (Filename.dirname (Sys.getcwd ())) "bin/rtt.exe";
      Filename.concat (Sys.getcwd ()) "_build/default/bin/rtt.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let run_units =
  [
    Alcotest.test_case "inproc: explicit crash schedules pass the invariants" `Slow
      (fun () ->
        (* each of these fires a disk fault that crashes the supervisor
           mid-drain; passing means the re-run recovered to exactly-once *)
        List.iteri
          (fun i sch ->
            match Chaos.run_inproc ~seed:(800 + i) sch with
            | Ok () -> ()
            | Error reason ->
                Alcotest.failf "schedule %s: %s" (Chaos.schedule_to_string sch) reason)
          [
            [ (Faults.Disk_fsync_fail, 0) ];
            [ (Faults.Disk_short_write, 1) ];
            [ (Faults.Disk_enospc, 0); (Faults.Disk_rename_fail, 2) ];
            [ (Faults.Disk_eio, 3); (Faults.Fuel_zero, 1) ];
          ]);
    Alcotest.test_case "run_seeds: a batch of inproc seeds passes" `Slow (fun () ->
        match Chaos.run_seeds ~mode:`Inproc ~first:1 ~count:6 () with
        | Ok n -> Alcotest.(check int) "all ran" 6 n
        | Error f -> Alcotest.fail (Chaos.render_failure f));
    Alcotest.test_case "nodes: one seeded two-process run passes" `Slow (fun () ->
        let seed = 3 in
        let sch = Chaos.schedule_of_seed ~nodes:true seed in
        match Chaos.run_nodes ~rtt:rtt_exe ~seed sch with
        | Ok () -> ()
        | Error reason ->
            Alcotest.failf "seed %d (%s): %s" seed (Chaos.schedule_to_string sch) reason);
    Alcotest.test_case "render_failure carries the replay commands" `Quick (fun () ->
        let f =
          {
            Chaos.seed = Some 42;
            mode = "inproc";
            schedule = [ (Faults.Disk_eio, 1) ];
            reason = "journal has uncommitted bytes";
          }
        in
        let text = Chaos.render_failure f in
        let contains needle hay =
          let n = String.length needle and h = String.length hay in
          let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "seed replay" true (contains "--seed 42" text);
        Alcotest.(check bool) "schedule replay" true
          (contains (Chaos.schedule_to_string f.Chaos.schedule) text);
        Alcotest.(check bool) "reason" true (contains f.Chaos.reason text));
  ]

let () =
  Alcotest.run "chaos"
    [ ("schedule", schedule_units); ("shrink", shrink_units); ("run", run_units) ]
