(* Tests for the fork-based worker pool and the content-addressed
   result cache as used by the service: a pooled drain produces the
   same journal outcomes as the sequential drain (up to record order),
   forked workers replay the supervisor's deterministic backoff
   schedule, duplicate instances are solved once and re-submissions are
   served entirely from the cache, and the process-level crash
   scenarios — SIGKILL of the workers mid-solve, SIGTERM of the pool
   parent — preserve exactly-once completion. *)

open Rtt_dag
open Rtt_duration
open Rtt_core
open Rtt_service

let rng_of seed = Random.State.make [| seed |]

(* ------------------------------------------------------------------ *)
(* fixtures                                                            *)

let fresh_spool =
  let counter = ref 0 in
  fun tag ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "rtt_pool_%s_%d_%d" tag (Unix.getpid ()) !counter)
    in
    if Sys.file_exists dir then
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
    else Unix.mkdir dir 0o755;
    dir

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let write_job ~spool name p = write_file (Filename.concat spool name) (Io.to_string p)

let cheap_instance seed =
  Problem.of_race_dag (Gen.erdos_renyi (rng_of seed) ~n:6 ~edge_prob:0.35) Problem.Binary

(* see test_service: slow to solve cold, collapses under a warm start *)
let wide_flat ~n ~opts =
  let g = Dag.create () in
  let s = Dag.add_vertex ~label:"s" g in
  let t = Dag.add_vertex ~label:"t" g in
  let vs = List.init n (fun _ -> Dag.add_vertex g) in
  List.iter
    (fun v ->
      Dag.add_edge g s v;
      Dag.add_edge g v t)
    vs;
  Problem.make g ~durations:(fun v ->
      if v = s || v = t then Duration.constant 0
      else Duration.make (List.init opts (fun r -> (r, 10 - r))))

let count_events records job pred =
  List.length (List.filter (fun r -> r.Journal.job = job && pred r.Journal.event) records)

let is_done = function Journal.Done _ -> true | _ -> false

let sorted_journal ~spool = List.sort compare (List.map Journal.encode (Journal.replay ~spool))

let base_config ~spool = { (Supervisor.default_config ~spool) with sleep = false; budget = 2 }

(* ------------------------------------------------------------------ *)
(* in-process: pooled drain vs sequential drain                        *)

let fill_distinct spool n =
  List.init n (fun i ->
      let name = Printf.sprintf "job_%02d.rtt" i in
      write_job ~spool name (cheap_instance (500 + i));
      name)

let pool_units =
  [
    Alcotest.test_case "16 distinct jobs: --workers 4 journal equals --workers 1" `Slow (fun () ->
        let seq = fresh_spool "eq_seq" in
        let par = fresh_spool "eq_par" in
        let jobs = fill_distinct seq 16 in
        ignore (fill_distinct par 16);
        write_file (Filename.concat seq "bad.rtt") "vertices 1\nedge 0 0\n";
        write_file (Filename.concat par "bad.rtt") "vertices 1\nedge 0 0\n";
        let code_seq = Supervisor.run { (base_config ~spool:seq) with workers = 1 } in
        let code_par = Supervisor.run { (base_config ~spool:par) with workers = 4 } in
        Alcotest.(check int) "same exit code" code_seq code_par;
        Alcotest.(check int) "failed-jobs exit" Supervisor.failed_jobs_exit_code code_par;
        Alcotest.(check (list string))
          "same journal up to record order" (sorted_journal ~spool:seq) (sorted_journal ~spool:par);
        let records = Journal.replay ~spool:par in
        List.iter
          (fun job ->
            Alcotest.(check int) (job ^ " done exactly once") 1 (count_events records job is_done))
          jobs;
        (* the pooled results are the sequential results, field for field *)
        List.iter
          (fun job ->
            let strip = List.filter (fun (k, _) -> k <> "attempt") in
            Alcotest.(check bool)
              (job ^ " same result file") true
              (Option.map strip (Supervisor.read_result ~spool:seq ~job)
              = Option.map strip (Supervisor.read_result ~spool:par ~job)))
          jobs);
    Alcotest.test_case "forked workers replay the seeded backoff schedule" `Quick (fun () ->
        (* a fuel deadline every attempt exhausts: deterministic
           transient failures, so the journaled backoff schedule is the
           whole story of the run *)
        let seq = fresh_spool "seed_seq" in
        let par = fresh_spool "seed_par" in
        List.iter
          (fun spool ->
            write_job ~spool "a.rtt" (cheap_instance 31);
            write_job ~spool "b.rtt" (cheap_instance 32))
          [ seq; par ];
        let cfg spool workers =
          {
            (base_config ~spool) with
            workers;
            seed = 9;
            deadline_fuel = Some 3;
            max_attempts = 3;
            policy = [ Rtt_engine.Policy.Exact ];
          }
        in
        Alcotest.(check int) "sequential exit" Supervisor.failed_jobs_exit_code
          (Supervisor.run (cfg seq 1));
        Alcotest.(check int) "pool exit" Supervisor.failed_jobs_exit_code
          (Supervisor.run (cfg par 2));
        Alcotest.(check (list string))
          "same retry schedule" (sorted_journal ~spool:seq) (sorted_journal ~spool:par);
        let backoffs job =
          List.filter_map
            (fun r ->
              match r.Journal.event with
              | Journal.Failed { attempt; transient = true; backoff; _ } when r.Journal.job = job
                ->
                  Some (attempt, backoff)
              | _ -> None)
            (Journal.replay ~spool:par)
        in
        List.iter
          (fun job ->
            let bs = backoffs job in
            Alcotest.(check int) (job ^ " two transient failures") 2 (List.length bs);
            List.iter
              (fun (attempt, backoff) ->
                Alcotest.(check int)
                  (Printf.sprintf "%s attempt %d backoff is Retry.backoff under seed 9" job attempt)
                  (Retry.backoff ~seed:9 ~job ~attempt)
                  backoff)
              bs)
          [ "a.rtt"; "b.rtt" ]);
    Alcotest.test_case "duplicates are solved once; re-submission is all cache hits" `Slow
      (fun () ->
        let spool = fresh_spool "dedup" in
        let cache = Filename.concat (fresh_spool "dedup_cache") "cache" in
        (* three distinct instances, each submitted twice *)
        List.iteri
          (fun i p ->
            write_job ~spool (Printf.sprintf "%c_first.rtt" (Char.chr (Char.code 'a' + i))) p;
            write_job ~spool (Printf.sprintf "%c_second.rtt" (Char.chr (Char.code 'a' + i))) p)
          [ cheap_instance 41; cheap_instance 42; cheap_instance 43 ];
        let cfg spool =
          { (base_config ~spool) with workers = 3; cache_dir = Some cache }
        in
        Alcotest.(check int) "drained" Supervisor.drained_exit_code (Supervisor.run (cfg spool));
        let records = Journal.replay ~spool in
        let cached, fresh =
          List.partition
            (fun r -> match r.Journal.event with Journal.Done { cached; _ } -> cached | _ -> false)
            (List.filter (fun r -> is_done r.Journal.event) records)
        in
        Alcotest.(check int) "three solved fresh" 3 (List.length fresh);
        Alcotest.(check int) "three served from cache" 3 (List.length cached);
        Alcotest.(check int) "three cache entries" 3 (Rtt_engine.Cache.entries ~dir:cache);
        (* duplicates agree with their originals *)
        List.iter
          (fun c ->
            let result job = Supervisor.read_result ~spool ~job in
            let pick key kvs = Option.bind kvs (List.assoc_opt key) in
            let first = result (Printf.sprintf "%c_first.rtt" c) in
            let second = result (Printf.sprintf "%c_second.rtt" c) in
            Alcotest.(check bool) "same makespan" true (pick "makespan" first = pick "makespan" second);
            Alcotest.(check bool)
              "same allocation" true
              (pick "allocation" first = pick "allocation" second))
          [ 'a'; 'b'; 'c' ];
        (* an identical spool re-submitted against the same cache
           completes with 100% hits and zero fuel *)
        let spool2 = fresh_spool "dedup2" in
        List.iteri
          (fun i p -> write_job ~spool:spool2 (Printf.sprintf "re_%d.rtt" i) p)
          [ cheap_instance 41; cheap_instance 42; cheap_instance 43 ];
        Alcotest.(check int) "re-submission drained" Supervisor.drained_exit_code
          (Supervisor.run (cfg spool2));
        let redone =
          List.filter (fun r -> is_done r.Journal.event) (Journal.replay ~spool:spool2)
        in
        Alcotest.(check int) "all three done" 3 (List.length redone);
        List.iter
          (fun r ->
            match r.Journal.event with
            | Journal.Done { cached; fuel; _ } ->
                Alcotest.(check bool) (r.Journal.job ^ " cache hit") true cached;
                Alcotest.(check int) (r.Journal.job ^ " zero fuel") 0 fuel
            | _ -> ())
          redone;
        Alcotest.(check int) "no new entries" 3 (Rtt_engine.Cache.entries ~dir:cache));
  ]

(* ------------------------------------------------------------------ *)
(* process-level: SIGKILL the workers, SIGTERM the pool parent         *)

let rtt_exe = Filename.concat (Filename.dirname (Sys.getcwd ())) "bin/rtt.exe"

let spawn_serve ?(extra = []) ~spool () =
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let argv =
    Array.of_list
      ([ rtt_exe; "serve"; "--spool"; spool; "-b"; "3"; "--checkpoint-every"; "50"; "--no-sleep" ]
      @ extra)
  in
  let pid = Unix.create_process rtt_exe argv Unix.stdin null null in
  Unix.close null;
  pid

let wait_exit pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED c -> `Exited c
  | _, Unix.WSIGNALED s -> `Signaled s
  | _, Unix.WSTOPPED _ -> `Stopped

let wait_for ?(timeout = 60.0) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () -. t0 > timeout then false
    else begin
      ignore (Unix.select [] [] [] 0.005);
      go ()
    end
  in
  go ()

(* direct children of [pid], via the Linux children file *)
let children_of pid =
  let path = Printf.sprintf "/proc/%d/task/%d/children" pid pid in
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
      let line = try input_line ic with End_of_file -> "" in
      close_in ic;
      List.filter_map int_of_string_opt (String.split_on_char ' ' (String.trim line))

let fill_crash_spool spool =
  for i = 0 to 11 do
    let name = Printf.sprintf "job_%02d.rtt" i in
    if i = 6 then write_job ~spool name (wide_flat ~n:10 ~opts:4)
    else write_job ~spool name (cheap_instance (700 + i))
  done

let process_units =
  [
    Alcotest.test_case "SIGKILL every worker mid-solve: pool recovers, exactly-once" `Slow
      (fun () ->
        let spool = fresh_spool "wkill" in
        fill_crash_spool spool;
        let ckpt = Checkpoint.path ~spool ~job:"job_06.rtt" in
        let pid = spawn_serve ~extra:[ "--workers"; "3" ] ~spool () in
        let die msg =
          Unix.kill pid Sys.sigkill;
          ignore (wait_exit pid);
          Alcotest.fail msg
        in
        if not (wait_for (fun () -> Sys.file_exists ckpt)) then
          die "no checkpoint appeared before timeout";
        (match children_of pid with
        | [] -> die "no worker children visible under /proc"
        | workers -> List.iter (fun w -> try Unix.kill w Sys.sigkill with Unix.Unix_error _ -> ()) workers);
        (* the parent notices the deaths, replays the claims on fresh
           workers, and still drains the whole spool *)
        (match wait_exit pid with
        | `Exited 0 -> ()
        | `Exited c -> Alcotest.failf "serve exited %d" c
        | _ -> Alcotest.fail "serve died");
        let records = Journal.replay ~spool in
        for i = 0 to 11 do
          let job = Printf.sprintf "job_%02d.rtt" i in
          Alcotest.(check int) (job ^ " done exactly once") 1 (count_events records job is_done)
        done;
        (* the killed worker's claim was consumed: the expensive job
           completed on a later attempt, resumed from its checkpoint *)
        match List.assoc "job_06.rtt" (Journal.fold records) with
        | Journal.Completed { attempt; _ } when attempt >= 2 -> ()
        | s -> Alcotest.failf "job_06 final state: %s" (Journal.status_name s));
    Alcotest.test_case "SIGTERM the pool parent: exit 30, abandoned, resumable" `Slow (fun () ->
        let spool = fresh_spool "wterm" in
        fill_crash_spool spool;
        let ckpt = Checkpoint.path ~spool ~job:"job_06.rtt" in
        let pid = spawn_serve ~extra:[ "--workers"; "3" ] ~spool () in
        let die msg =
          Unix.kill pid Sys.sigkill;
          ignore (wait_exit pid);
          Alcotest.fail msg
        in
        if not (wait_for (fun () -> Sys.file_exists ckpt)) then
          die "no checkpoint appeared before timeout";
        Unix.kill pid Sys.sigterm;
        (match wait_exit pid with
        | `Exited c -> Alcotest.(check int) "shutdown exit" Supervisor.shutdown_exit_code c
        | _ -> Alcotest.fail "serve died instead of exiting");
        let aborted =
          List.filter
            (fun r -> match r.Journal.event with Journal.Abandoned _ -> true | _ -> false)
            (Journal.replay ~spool)
        in
        Alcotest.(check bool) "at least one abandoned attempt" true (aborted <> []);
        (* a pooled restart over the same spool finishes the work *)
        (match wait_exit (spawn_serve ~extra:[ "--workers"; "3" ] ~spool ()) with
        | `Exited 0 -> ()
        | `Exited c -> Alcotest.failf "restart exited %d" c
        | _ -> Alcotest.fail "restart died");
        let records = Journal.replay ~spool in
        for i = 0 to 11 do
          let job = Printf.sprintf "job_%02d.rtt" i in
          Alcotest.(check int) (job ^ " done exactly once") 1 (count_events records job is_done)
        done);
  ]

let () =
  Alcotest.run "pool"
    [ ("pool", pool_units); ("process", process_units) ]
