(* Tests for the replicated job store: follower replay bookkeeping
   (apply_line's stale/gap/bad/applied contract, watermark recovery,
   catch-up slicing), the sync-replicas gate, the stats JSON — and the
   process-level two-node scenarios against the real rtt binary:
   byte-for-byte journal convergence, read-only follower serving,
   SIGKILL-the-primary failover with exactly-once completion on the
   promoted follower, follower restart catching up from its durable
   watermark (no full re-ship), the --sync-replicas durability gate,
   fault injection (repl.frame-drop, repl.ack-delay), and a
   submit --wait that rides out a daemon restart via client-side
   reconnect. *)

open Rtt_service

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* fixtures                                                            *)

let fresh_dir =
  let counter = ref 0 in
  fun tag ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "rtt_repl_%s_%d_%d" tag (Unix.getpid ()) !counter)
    in
    if Sys.file_exists dir then
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
    else Unix.mkdir dir 0o755;
    dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let record job event = { Journal.job; event }
let queued job = record job Journal.Queued

(* ------------------------------------------------------------------ *)
(* follower replay bookkeeping                                         *)

let replica_units =
  [
    Alcotest.test_case "fresh follower: watermark 0, empty states" `Quick (fun () ->
        let f = Replica.open_follower ~spool:(fresh_dir "fresh") in
        Alcotest.(check int) "watermark" 0 f.Replica.watermark;
        Alcotest.(check int) "states" 0 (List.length f.Replica.states);
        Replica.close_follower f);
    Alcotest.test_case "apply_line: applied / stale / gap / bad" `Quick (fun () ->
        let spool = fresh_dir "apply" in
        let f = Replica.open_follower ~spool in
        let l0 = Journal.encode (queued "a") in
        let l1 = Journal.encode (record "a" (Journal.Started { attempt = 1 })) in
        (match Replica.apply_line f ~seq:0 ~line:l0 with
        | `Applied r -> Alcotest.(check bool) "decoded" true (r = queued "a")
        | _ -> Alcotest.fail "seq 0 on watermark 0 must apply");
        Alcotest.(check int) "watermark advanced" 1 f.Replica.watermark;
        (* a re-ship of a record we already hold is stale, not an error *)
        Alcotest.(check bool) "stale" true (Replica.apply_line f ~seq:0 ~line:l0 = `Stale);
        Alcotest.(check int) "stale does not advance" 1 f.Replica.watermark;
        (* a skipped frame is a gap: nothing is applied out of order *)
        Alcotest.(check bool) "gap" true (Replica.apply_line f ~seq:2 ~line:l1 = `Gap);
        Alcotest.(check int) "gap does not advance" 1 f.Replica.watermark;
        (* an undecodable line is rejected without touching the journal *)
        Alcotest.(check bool) "bad" true (Replica.apply_line f ~seq:1 ~line:"garbage" = `Bad);
        Alcotest.(check bool) "in-order applies" true
          (match Replica.apply_line f ~seq:1 ~line:l1 with `Applied _ -> true | _ -> false);
        Replica.close_follower f;
        (* the journal holds exactly the applied lines, verbatim *)
        Alcotest.(check string) "byte-for-byte" (l0 ^ "\n" ^ l1 ^ "\n")
          (read_file (Journal.path ~spool));
        (* reopening recovers the same watermark and folded states *)
        let f2 = Replica.open_follower ~spool in
        Alcotest.(check int) "recovered watermark" 2 f2.Replica.watermark;
        (match List.assoc_opt "a" f2.Replica.states with
        | Some (Journal.Running { attempt = 1 }) -> ()
        | _ -> Alcotest.fail "states must fold the applied prefix");
        Replica.close_follower f2);
    Alcotest.test_case "lines_from slices the committed suffix with true seqs" `Quick (fun () ->
        let spool = fresh_dir "slice" in
        let j = Journal.open_ ~spool in
        let rs = [ queued "a"; queued "b"; queued "c" ] in
        List.iter (Journal.append j) rs;
        Journal.close j;
        let all = Replica.lines_from ~spool 0 in
        Alcotest.(check int) "all" 3 (List.length all);
        List.iteri
          (fun i (seq, line) ->
            Alcotest.(check int) "seq" i seq;
            Alcotest.(check string) "line" (Journal.encode (List.nth rs i)) line)
          all;
        (match Replica.lines_from ~spool 2 with
        | [ (2, line) ] -> Alcotest.(check string) "tail" (Journal.encode (queued "c")) line
        | _ -> Alcotest.fail "from 2: exactly the last record");
        Alcotest.(check int) "past the end" 0 (List.length (Replica.lines_from ~spool 9)));
    Alcotest.test_case "write_blob lands atomically, no tmp left behind" `Quick (fun () ->
        let dir = fresh_dir "blob" in
        let path = Filename.concat dir "x.rtt" in
        Replica.write_blob ~path "vertices 2\n";
        Alcotest.(check string) "content" "vertices 2\n" (read_file path);
        Alcotest.(check int) "only the blob" 1 (Array.length (Sys.readdir dir)));
  ]

let sync_units =
  [
    Alcotest.test_case "replicas 0 never holds" `Quick (fun () ->
        let s = Replica.Sync.create ~replicas:0 in
        Replica.Sync.hold s ~seq:7 "t";
        Alcotest.(check (list string)) "released with no acks at all" [ "t" ]
          (Replica.Sync.release s ~watermarks:[]);
        Alcotest.(check int) "empty" 0 (Replica.Sync.pending s));
    Alcotest.test_case "release when K watermarks pass the seq, in hold order" `Quick (fun () ->
        let s = Replica.Sync.create ~replicas:2 in
        Replica.Sync.hold s ~seq:0 "a";
        Replica.Sync.hold s ~seq:1 "b";
        (* one follower past both records is not enough for K = 2 *)
        Alcotest.(check (list string)) "one ack" [] (Replica.Sync.release s ~watermarks:[ 2 ]);
        (* watermark w covers seq iff w > seq *)
        Alcotest.(check (list string)) "covers seq 0 only" [ "a" ]
          (Replica.Sync.release s ~watermarks:[ 2; 1 ]);
        Alcotest.(check int) "b still held" 1 (Replica.Sync.pending s);
        Alcotest.(check (list string)) "then seq 1" [ "b" ]
          (Replica.Sync.release s ~watermarks:[ 2; 2 ]);
        (* a follower vanishing can shrink coverage: nothing re-held *)
        Alcotest.(check (list string)) "idempotent" [] (Replica.Sync.release s ~watermarks:[]));
    Alcotest.test_case "drain gives back everything in hold order" `Quick (fun () ->
        let s = Replica.Sync.create ~replicas:1 in
        Replica.Sync.hold s ~seq:0 "a";
        Replica.Sync.hold s ~seq:1 "b";
        Alcotest.(check (list string)) "drained" [ "a"; "b" ] (Replica.Sync.drain s);
        Alcotest.(check int) "empty" 0 (Replica.Sync.pending s));
    Alcotest.test_case "stats_json shape" `Quick (fun () ->
        Alcotest.(check string) "exact"
          {|{"role":"primary","records":9,"sync_replicas":1,"held":2,"followers":[{"peer":"unix","sent":9,"acked":7,"lag":2}]}|}
          (Replica.stats_json ~role:"primary" ~records:9 ~sync_replicas:1 ~held:2
             ~followers:[ ("unix", 9, 7) ] ()));
    Alcotest.test_case "stats_json embeds the lp object verbatim" `Quick (fun () ->
        Alcotest.(check string) "exact"
          {|{"role":"follower","records":3,"sync_replicas":0,"held":0,"followers":[],"lp":{"engine":"sparse","pivots":7}}|}
          (Replica.stats_json ~lp:{|{"engine":"sparse","pivots":7}|} ~role:"follower" ~records:3
             ~sync_replicas:0 ~held:0 ~followers:[] ()));
  ]

(* ------------------------------------------------------------------ *)
(* two-node process scenarios                                          *)

let rtt_exe =
  let candidates =
    [
      Filename.concat (Filename.dirname (Sys.getcwd ())) "bin/rtt.exe";
      Filename.concat (Sys.getcwd ()) "_build/default/bin/rtt.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let run_rtt args =
  let out = Filename.temp_file "rtt_repl_out" ".txt" in
  let fd = Unix.openfile out [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid = Unix.create_process rtt_exe (Array.of_list (rtt_exe :: args)) Unix.stdin fd null in
  Unix.close fd;
  Unix.close null;
  let code =
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED c -> c
    | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> 255
  in
  let text = read_file out in
  Sys.remove out;
  (code, text)

(* spawn with stderr captured: the catch-up assertions read the
   replica's own log ("offering watermark N") *)
let spawn_rtt ?log args =
  let err =
    match log with
    | Some path -> Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    | None -> Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid = Unix.create_process rtt_exe (Array.of_list (rtt_exe :: args)) Unix.stdin null err in
  Unix.close null;
  Unix.close err;
  pid

let wait_exit pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED c -> `Exited c
  | _, Unix.WSIGNALED s -> `Signaled s
  | _, Unix.WSTOPPED _ -> `Stopped
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> `Reaped

let kill_quietly pid signal = try Unix.kill pid signal with Unix.Unix_error _ -> ()

let reap pid =
  kill_quietly pid Sys.sigkill;
  ignore (wait_exit pid)

let wait_for ?(timeout = 60.0) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () -. t0 > timeout then false
    else begin
      ignore (Unix.select [] [] [] 0.02);
      go ()
    end
  in
  go ()

let gen_instance ~kind ~seed ~n path =
  let code, text =
    run_rtt [ "gen"; "-k"; kind; "-n"; string_of_int n; "--seed"; string_of_int seed ]
  in
  Alcotest.(check int) "gen exits 0" 0 code;
  write_file path text

let spawn_daemon ?(extra = []) ~spool ~socket () =
  let pid = spawn_rtt ([ "daemon"; "--spool"; spool; "--socket"; socket; "-b"; "3" ] @ extra) in
  if not (wait_for (fun () -> Sys.file_exists socket)) then begin
    reap pid;
    Alcotest.fail "daemon never created its socket"
  end;
  pid

let spawn_replica ?(extra = []) ?log ~spool ~socket ~primary () =
  let pid =
    spawn_rtt ?log
      ([ "replica"; "--spool"; spool; "--socket"; socket; "--primary"; primary; "-v" ] @ extra)
  in
  if not (wait_for (fun () -> Sys.file_exists socket)) then begin
    reap pid;
    Alcotest.fail "replica never created its socket"
  end;
  pid

let journal_text spool =
  let p = Journal.path ~spool in
  if Sys.file_exists p then read_file p else ""

let journals_converged a b =
  let ta = journal_text a in
  ta <> "" && ta = journal_text b

(* the status JSON for [id], asked of the node at [socket] *)
let status_of ~socket id = snd (run_rtt [ "status"; id; "--socket"; socket ])

let process_units =
  [
    Alcotest.test_case "two nodes converge byte-for-byte; follower is read-only" `Slow (fun () ->
        let dir = fresh_dir "pair" in
        let a = Filename.concat dir "a" and b = Filename.concat dir "b" in
        Unix.mkdir a 0o755;
        Unix.mkdir b 0o755;
        let ca = Filename.concat dir "ca" and cb = Filename.concat dir "cb" in
        let asock = Filename.concat dir "a.sock" and bsock = Filename.concat dir "b.sock" in
        let daemon = spawn_daemon ~spool:a ~socket:asock ~extra:[ "--cache-dir"; ca ] () in
        let replica =
          spawn_replica ~spool:b ~socket:bsock ~primary:asock ~extra:[ "--cache-dir"; cb ] ()
        in
        Fun.protect
          ~finally:(fun () ->
            reap replica;
            reap daemon)
          (fun () ->
            let inst = Filename.concat dir "i.rtt" in
            gen_instance ~kind:"hub" ~seed:7 ~n:16 inst;
            let code, _ = run_rtt [ "submit"; inst; "--socket"; asock; "--wait"; "--timeout"; "60" ] in
            Alcotest.(check int) "solved on the primary" 0 code;
            let _, id = run_rtt [ "submit"; inst; "--socket"; asock ] in
            let id = String.trim id in
            Alcotest.(check bool) "journals byte-identical at quiescence" true
              (wait_for (fun () -> journals_converged a b));
            (* the instance attachment landed before its queued frame *)
            Alcotest.(check bool) "instance replicated" true
              (Sys.file_exists (Filename.concat b (id ^ ".rtt")));
            Alcotest.(check bool) "cache entries replicated" true
              (Sys.file_exists cb && Array.length (Sys.readdir cb) > 0);
            (* the follower answers status locally, from replicated state *)
            Alcotest.(check bool) "follower sees the job done" true
              (wait_for (fun () -> contains ~needle:{|"state":"done"|} (status_of ~socket:bsock id)));
            (* and refuses writes *)
            let rc, _ = run_rtt [ "submit"; inst; "--socket"; bsock ] in
            Alcotest.(check int) "submit to a follower is refused" 40 rc;
            (* stats: roles, and zero lag once converged *)
            let _, astats = run_rtt [ "status"; "--socket"; asock ] in
            let _, bstats = run_rtt [ "status"; "--socket"; bsock ] in
            Alcotest.(check bool) "primary role" true (contains ~needle:{|"role":"primary"|} astats);
            Alcotest.(check bool) "follower role" true
              (contains ~needle:{|"role":"follower"|} bstats);
            Alcotest.(check bool) "no lag at quiescence" true
              (wait_for (fun () ->
                   let _, s = run_rtt [ "status"; "--socket"; asock ] in
                   contains ~needle:{|"lag":0|} s))));
    Alcotest.test_case "SIGKILL primary mid-flight: promoted follower finishes exactly once" `Slow
      (fun () ->
        let dir = fresh_dir "failover" in
        let a = Filename.concat dir "a" and b = Filename.concat dir "b" in
        Unix.mkdir a 0o755;
        Unix.mkdir b 0o755;
        let asock = Filename.concat dir "a.sock" and bsock = Filename.concat dir "b.sock" in
        (* an exact-only solve under a tight fuel deadline fails
           transiently on every cold attempt but accumulates checkpoint
           progress — the job is reliably mid-retry when we pull the
           plug, and reliably finishes on the survivor *)
        let churn =
          [ "--deadline-fuel"; "20"; "--fallback"; "exact"; "--max-attempts"; "100000" ]
        in
        let daemon = spawn_daemon ~spool:a ~socket:asock ~extra:churn () in
        let replica =
          spawn_replica ~spool:b ~socket:bsock ~primary:asock ~extra:[ "--max-attempts"; "100000" ]
            ()
        in
        Fun.protect
          ~finally:(fun () ->
            reap replica;
            reap daemon)
          (fun () ->
            let inst = Filename.concat dir "i.rtt" in
            gen_instance ~kind:"layered" ~seed:42 ~n:9 inst;
            let code, id = run_rtt [ "submit"; inst; "--socket"; asock ] in
            Alcotest.(check int) "accepted" 0 code;
            let id = String.trim id in
            (* wait until the claim (a started record) is replicated to
               the follower, so the kill provably lands mid-assignment *)
            let started spool =
              List.exists
                (fun r ->
                  r.Journal.job = id ^ ".rtt"
                  && match r.Journal.event with Journal.Started _ -> true | _ -> false)
                (Journal.replay ~spool)
            in
            Alcotest.(check bool) "job started and claim replicated" true
              (wait_for (fun () -> started a && started b));
            kill_quietly daemon Sys.sigkill;
            ignore (wait_exit daemon);
            let pc, pout = run_rtt [ "promote"; "--socket"; bsock; "--connect-attempts"; "4" ] in
            Alcotest.(check int) "promote exits 0" 0 pc;
            Alcotest.(check bool) "answered promoting" true (contains ~needle:"promoting" pout);
            (* the promoted node resumes the drain and completes the job *)
            Alcotest.(check bool) "job completes on the promoted node" true
              (wait_for (fun () ->
                   contains ~needle:{|"state":"done"|}
                     (snd
                        (run_rtt
                           [ "status"; id; "--socket"; bsock; "--connect-attempts"; "4" ]))));
            (* exactly-once: across both lives of the job there is ONE
               done record, and the journal folds to Completed *)
            let records = Journal.replay ~spool:b in
            let dones =
              List.filter
                (fun r ->
                  r.Journal.job = id ^ ".rtt"
                  && match r.Journal.event with Journal.Done _ -> true | _ -> false)
                records
            in
            Alcotest.(check int) "exactly one done record" 1 (List.length dones);
            (match List.assoc_opt (id ^ ".rtt") (Journal.fold records) with
            | Some (Journal.Completed _) -> ()
            | _ -> Alcotest.fail "journal must fold to Completed")));
    Alcotest.test_case "killed follower catches up from its watermark on restart" `Slow (fun () ->
        let dir = fresh_dir "catchup" in
        let a = Filename.concat dir "a" and b = Filename.concat dir "b" in
        Unix.mkdir a 0o755;
        Unix.mkdir b 0o755;
        let asock = Filename.concat dir "a.sock" and bsock = Filename.concat dir "b.sock" in
        let daemon = spawn_daemon ~spool:a ~socket:asock () in
        let replica = ref (spawn_replica ~spool:b ~socket:bsock ~primary:asock ()) in
        Fun.protect
          ~finally:(fun () ->
            reap !replica;
            reap daemon)
          (fun () ->
            let i1 = Filename.concat dir "i1.rtt" and i2 = Filename.concat dir "i2.rtt" in
            gen_instance ~kind:"hub" ~seed:11 ~n:16 i1;
            gen_instance ~kind:"hub" ~seed:12 ~n:24 i2;
            let c1, _ = run_rtt [ "submit"; i1; "--socket"; asock; "--wait"; "--timeout"; "60" ] in
            Alcotest.(check int) "first job done" 0 c1;
            Alcotest.(check bool) "replicated before the kill" true
              (wait_for (fun () -> journals_converged a b));
            kill_quietly !replica Sys.sigkill;
            ignore (wait_exit !replica);
            if Sys.file_exists bsock then Sys.remove bsock;
            (* the primary keeps serving with its follower dead *)
            let c2, _ = run_rtt [ "submit"; i2; "--socket"; asock; "--wait"; "--timeout"; "60" ] in
            Alcotest.(check int) "primary unaffected" 0 c2;
            (* restart on the same spool: it must offer its durable
               watermark (no full re-ship) and converge *)
            let log = Filename.concat dir "replica.log" in
            replica := spawn_replica ~log ~spool:b ~socket:bsock ~primary:asock ();
            Alcotest.(check bool) "converged after catch-up" true
              (wait_for (fun () -> journals_converged a b));
            Alcotest.(check bool) "offered a non-zero watermark" true
              (wait_for ~timeout:10.0 (fun () ->
                   let text = if Sys.file_exists log then read_file log else "" in
                   contains ~needle:"offering watermark" text
                   && not (contains ~needle:"offering watermark 0" text)))));
    Alcotest.test_case "--sync-replicas 1 holds acks until a follower is durable" `Slow (fun () ->
        let dir = fresh_dir "sync" in
        let a = Filename.concat dir "a" and b = Filename.concat dir "b" in
        Unix.mkdir a 0o755;
        Unix.mkdir b 0o755;
        let asock = Filename.concat dir "a.sock" and bsock = Filename.concat dir "b.sock" in
        let daemon = spawn_daemon ~spool:a ~socket:asock ~extra:[ "--sync-replicas"; "1" ] () in
        Fun.protect
          ~finally:(fun () -> reap daemon)
          (fun () ->
            let inst = Filename.concat dir "i.rtt" in
            gen_instance ~kind:"hub" ~seed:21 ~n:16 inst;
            (* no follower: the accepted reply is held past the client's
               patience — durability was asked for and cannot be given *)
            let c0, _ = run_rtt [ "submit"; inst; "--socket"; asock; "--timeout"; "2" ] in
            Alcotest.(check int) "unreplicated submit times out (42)" 42 c0;
            let replica = spawn_replica ~spool:b ~socket:bsock ~primary:asock () in
            Fun.protect
              ~finally:(fun () -> reap replica)
              (fun () ->
                (* with a follower attached the gate opens: both the
                   coalesced resubmit and a brand-new submission ack *)
                let c1, _ = run_rtt [ "submit"; inst; "--socket"; asock; "--timeout"; "30" ] in
                Alcotest.(check int) "resubmit acks once replicated" 0 c1;
                let i2 = Filename.concat dir "i2.rtt" in
                gen_instance ~kind:"hub" ~seed:22 ~n:24 i2;
                let c2, _ = run_rtt [ "submit"; i2; "--socket"; asock; "--timeout"; "30" ] in
                Alcotest.(check int) "fresh submit acks through the gate" 0 c2)));
    Alcotest.test_case "injected faults: frame drop and swallowed ack both converge" `Slow
      (fun () ->
        let dir = fresh_dir "faults" in
        let a = Filename.concat dir "a" and b = Filename.concat dir "b" in
        Unix.mkdir a 0o755;
        Unix.mkdir b 0o755;
        let asock = Filename.concat dir "a.sock" and bsock = Filename.concat dir "b.sock" in
        (* the primary drops the third shipped frame; the follower
           swallows its first per-frame ack. The gap forces a
           reconnect-from-watermark, the lost ack is covered by the
           heartbeat — and a sync-replicas submit still acks *)
        let daemon =
          spawn_daemon ~spool:a ~socket:asock
            ~extra:[ "--sync-replicas"; "1"; "--inject"; "repl.frame-drop:2" ]
            ()
        in
        let replica =
          spawn_replica ~spool:b ~socket:bsock ~primary:asock
            ~extra:[ "--inject"; "repl.ack-delay:0" ]
            ()
        in
        Fun.protect
          ~finally:(fun () ->
            reap replica;
            reap daemon)
          (fun () ->
            let i1 = Filename.concat dir "i1.rtt" and i2 = Filename.concat dir "i2.rtt" in
            gen_instance ~kind:"hub" ~seed:31 ~n:16 i1;
            gen_instance ~kind:"hub" ~seed:32 ~n:24 i2;
            let c1, _ = run_rtt [ "submit"; i1; "--socket"; asock; "--timeout"; "30" ] in
            Alcotest.(check int) "acked despite the swallowed ack" 0 c1;
            let c2, _ = run_rtt [ "submit"; i2; "--socket"; asock; "--timeout"; "30" ] in
            Alcotest.(check int) "acked across the dropped frame" 0 c2;
            Alcotest.(check bool) "journals converge despite both faults" true
              (wait_for (fun () -> journals_converged a b))));
    Alcotest.test_case "submit --wait rides out a daemon restart" `Slow (fun () ->
        let dir = fresh_dir "ride" in
        let a = Filename.concat dir "a" in
        Unix.mkdir a 0o755;
        let asock = Filename.concat dir "a.sock" in
        let churn =
          [ "--deadline-fuel"; "20"; "--fallback"; "exact"; "--max-attempts"; "100000" ]
        in
        let daemon = ref (spawn_daemon ~spool:a ~socket:asock ~extra:churn ()) in
        Fun.protect
          ~finally:(fun () -> reap !daemon)
          (fun () ->
            let inst = Filename.concat dir "i.rtt" in
            gen_instance ~kind:"layered" ~seed:42 ~n:9 inst;
            (* a waiter in flight when the daemon dies: the client must
               reconnect with backoff and re-send the wait *)
            let out = Filename.concat dir "waiter.out" in
            let fd = Unix.openfile out [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
            let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
            let waiter =
              Unix.create_process rtt_exe
                [|
                  rtt_exe; "submit"; inst; "--socket"; asock; "--wait"; "--timeout"; "120";
                  "--connect-attempts"; "12";
                |]
                Unix.stdin fd null
            in
            Unix.close fd;
            Unix.close null;
            (* let it be accepted and start churning, then pull the plug *)
            ignore (wait_for (fun () -> List.length (Journal.replay ~spool:a) >= 2));
            kill_quietly !daemon Sys.sigkill;
            ignore (wait_exit !daemon);
            if Sys.file_exists asock then Sys.remove asock;
            ignore (Unix.select [] [] [] 0.3);
            (* restart on the same spool and socket — keep the generous
               attempt budget (the churn already burned many) but drop
               the fuel deadline, so the adopted job can actually
               finish; the client's reconnect completes the story *)
            daemon := spawn_daemon ~spool:a ~socket:asock ~extra:[ "--max-attempts"; "100000" ] ();
            (match wait_exit waiter with
            | `Exited 0 -> ()
            | `Exited c -> Alcotest.failf "waiter must ride out the restart, exited %d" c
            | _ -> Alcotest.fail "waiter killed");
            Alcotest.(check bool) "waiter printed a result" true
              (contains ~needle:"makespan" (read_file out))));
  ]

let () =
  Alcotest.run "replica"
    [
      ("replica", replica_units);
      ("sync", sync_units);
      ("process", process_units);
    ]
