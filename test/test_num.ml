(* Unit and property tests for the exact-arithmetic substrate
   (Bigint, Rat). The LP pipeline trusts this module blindly, so the
   algebraic laws are checked on operands far beyond native range. *)

open Rtt_num

let bi = Bigint.of_string
let check_s name expected actual = Alcotest.(check string) name expected actual

(* random decimal numeral up to [digits] digits, possibly negative *)
let gen_bigint digits =
  QCheck.Gen.(
    let* neg = bool in
    let* len = int_range 1 digits in
    let* first = int_range 1 9 in
    let* rest = list_size (return (len - 1)) (int_range 0 9) in
    let s = String.concat "" (List.map string_of_int (first :: rest)) in
    return (Bigint.of_string (if neg then "-" ^ s else s)))

let arb_bigint = QCheck.make ~print:Bigint.to_string (gen_bigint 40)
let arb_small = QCheck.make ~print:Bigint.to_string (gen_bigint 12)

let arb_rat =
  let gen =
    QCheck.Gen.(
      let* n = gen_bigint 25 in
      let* d = gen_bigint 12 in
      let d = if Bigint.is_zero d then Bigint.one else d in
      return (Rat.make n d))
  in
  QCheck.make ~print:Rat.to_string gen

(* ------------------------------------------------------------------ *)

let unit_tests =
  [
    Alcotest.test_case "zero and one" `Quick (fun () ->
        check_s "zero" "0" (Bigint.to_string Bigint.zero);
        check_s "one" "1" (Bigint.to_string Bigint.one);
        Alcotest.(check bool) "0 = -0" true Bigint.(equal zero (neg zero)));
    Alcotest.test_case "string round-trips" `Quick (fun () ->
        List.iter
          (fun s -> check_s s s (Bigint.to_string (bi s)))
          [ "0"; "1"; "-1"; "1073741824"; "-1073741823"; "123456789123456789123456789";
            "1000000000000000000000000000000"; "-999999999999999999999999999999" ]);
    Alcotest.test_case "of_string normalizes" `Quick (fun () ->
        check_s "leading zeros" "-123" (Bigint.to_string (bi "-000123"));
        check_s "plus sign" "42" (Bigint.to_string (bi "+42")));
    Alcotest.test_case "of_string rejects garbage" `Quick (fun () ->
        List.iter
          (fun s ->
            Alcotest.check_raises s (Invalid_argument "Bigint.of_string: bad digit") (fun () ->
                ignore (bi s)))
          [ "12a3"; "1.5" ];
        Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty") (fun () ->
            ignore (bi "")));
    Alcotest.test_case "add carries across limbs" `Quick (fun () ->
        check_s "carry" "1152921504606846976"
          (Bigint.to_string Bigint.(bi "1152921504606846975" + one)));
    Alcotest.test_case "mul known value" `Quick (fun () ->
        check_s "mul" "121932631356500531591068431594116748259548848024980947900"
          (Bigint.to_string Bigint.(bi "123456789123456789123456789" * bi "987654321987654321987654321100")));
    Alcotest.test_case "pow" `Quick (fun () ->
        check_s "2^128" "340282366920938463463374607431768211456"
          (Bigint.to_string (Bigint.pow Bigint.two 128));
        check_s "x^0" "1" (Bigint.to_string (Bigint.pow (bi "999") 0)));
    Alcotest.test_case "pow rejects negative exponent" `Quick (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Bigint.pow: negative exponent") (fun () ->
            ignore (Bigint.pow Bigint.two (-1))));
    Alcotest.test_case "euclidean division signs" `Quick (fun () ->
        let cases = [ (7, 3, 2, 1); (-7, 3, -3, 2); (7, -3, -2, 1); (-7, -3, 3, 2) ] in
        List.iter
          (fun (a, b, q, r) ->
            let q', r' = Bigint.divmod (Bigint.of_int a) (Bigint.of_int b) in
            Alcotest.(check int) (Printf.sprintf "%d/%d q" a b) q (Bigint.to_int q');
            Alcotest.(check int) (Printf.sprintf "%d/%d r" a b) r (Bigint.to_int r'))
          cases);
    Alcotest.test_case "division by zero" `Quick (fun () ->
        Alcotest.check_raises "div0" Division_by_zero (fun () ->
            ignore (Bigint.divmod Bigint.one Bigint.zero)));
    Alcotest.test_case "gcd / lcm" `Quick (fun () ->
        check_s "gcd" "12" (Bigint.to_string (Bigint.gcd (bi "48") (bi "-36")));
        check_s "gcd00" "0" (Bigint.to_string (Bigint.gcd Bigint.zero Bigint.zero));
        check_s "lcm" "144" (Bigint.to_string (Bigint.lcm (bi "48") (bi "36"))));
    Alcotest.test_case "int bounds" `Quick (fun () ->
        Alcotest.(check int) "max_int" max_int (Bigint.to_int (bi (string_of_int max_int)));
        Alcotest.(check int) "min_int" min_int (Bigint.to_int (Bigint.of_int min_int));
        Alcotest.(check (option int)) "overflow" None
          (Bigint.to_int_opt (Bigint.add (bi (string_of_int max_int)) Bigint.one)));
    Alcotest.test_case "to_float" `Quick (fun () ->
        Alcotest.(check (float 1e6)) "big" 1e30 (Bigint.to_float (bi "1000000000000000000000000000000")));
    Alcotest.test_case "rat normalization" `Quick (fun () ->
        check_s "2/4" "1/2" (Rat.to_string (Rat.of_ints 2 4));
        check_s "neg den" "-1/2" (Rat.to_string (Rat.of_ints 1 (-2)));
        check_s "int form" "3" (Rat.to_string (Rat.of_ints 6 2)));
    Alcotest.test_case "rat of_string" `Quick (fun () ->
        Alcotest.(check bool) "22/7" true Rat.(equal (of_string "22/7") (of_ints 22 7));
        Alcotest.(check bool) "-5" true Rat.(equal (of_string "-5") (of_int (-5))));
    Alcotest.test_case "rat floor/ceil" `Quick (fun () ->
        Alcotest.(check int) "floor 7/2" 3 (Rat.to_int_floor (Rat.of_ints 7 2));
        Alcotest.(check int) "ceil 7/2" 4 (Rat.to_int_ceil (Rat.of_ints 7 2));
        Alcotest.(check int) "floor -7/2" (-4) (Rat.to_int_floor (Rat.of_ints (-7) 2));
        Alcotest.(check int) "ceil -7/2" (-3) (Rat.to_int_ceil (Rat.of_ints (-7) 2));
        Alcotest.(check int) "floor int" 5 (Rat.to_int_floor (Rat.of_int 5)));
    Alcotest.test_case "rat division by zero" `Quick (fun () ->
        Alcotest.check_raises "div" Division_by_zero (fun () -> ignore (Rat.div Rat.one Rat.zero));
        Alcotest.check_raises "inv" Division_by_zero (fun () -> ignore (Rat.inv Rat.zero));
        Alcotest.check_raises "make" Division_by_zero (fun () ->
            ignore (Rat.make Bigint.one Bigint.zero)));
  ]

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let property_tests =
  [
    prop "add commutative" 200 (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
        Bigint.(equal (add a b) (add b a)));
    prop "add associative" 200 (QCheck.triple arb_bigint arb_bigint arb_bigint) (fun (a, b, c) ->
        Bigint.(equal (add a (add b c)) (add (add a b) c)));
    prop "mul commutative" 200 (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
        Bigint.(equal (mul a b) (mul b a)));
    prop "mul associative" 100 (QCheck.triple arb_small arb_small arb_small) (fun (a, b, c) ->
        Bigint.(equal (mul a (mul b c)) (mul (mul a b) c)));
    prop "distributivity" 200 (QCheck.triple arb_bigint arb_bigint arb_bigint) (fun (a, b, c) ->
        Bigint.(equal (mul a (add b c)) (add (mul a b) (mul a c))));
    prop "sub inverse" 200 (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
        Bigint.(equal (add (sub a b) b) a));
    prop "divmod identity" 200 (QCheck.pair arb_bigint arb_small) (fun (a, b) ->
        QCheck.assume (not (Bigint.is_zero b));
        let q, r = Bigint.divmod a b in
        Bigint.(equal (add (mul q b) r) a)
        && Bigint.(r >= zero)
        && Bigint.(r < abs b));
    prop "string round-trip" 300 arb_bigint (fun a ->
        Bigint.equal a (Bigint.of_string (Bigint.to_string a)));
    prop "compare antisymmetric" 200 (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
        compare (Bigint.compare a b) 0 = compare 0 (Bigint.compare b a));
    prop "gcd divides both" 200 (QCheck.pair arb_small arb_small) (fun (a, b) ->
        QCheck.assume (not (Bigint.is_zero a) || not (Bigint.is_zero b));
        let g = Bigint.gcd a b in
        Bigint.(is_zero (rem a g)) && Bigint.(is_zero (rem b g)));
    prop "of_int consistent with of_string" 500 QCheck.int (fun n ->
        Bigint.equal (Bigint.of_int n) (Bigint.of_string (string_of_int n)));
    prop "mul_int consistent" 200 (QCheck.pair arb_bigint QCheck.small_signed_int) (fun (a, k) ->
        Bigint.(equal (mul_int a k) (mul a (of_int k))));
    prop "rat field: a + (-a) = 0" 200 arb_rat (fun a -> Rat.(is_zero (add a (neg a))));
    prop "rat field: a * inv a = 1" 200 arb_rat (fun a ->
        QCheck.assume (not (Rat.is_zero a));
        Rat.(equal (mul a (inv a)) one));
    prop "rat distributivity" 100 (QCheck.triple arb_rat arb_rat arb_rat) (fun (a, b, c) ->
        Rat.(equal (mul a (add b c)) (add (mul a b) (mul a c))));
    prop "rat floor <= x < floor + 1" 200 arb_rat (fun a ->
        let f = Rat.floor a in
        Rat.(f <= a) && Rat.(a < add f one));
    prop "rat ceil - floor in {0,1}" 200 arb_rat (fun a ->
        let d = Rat.(sub (ceil a) (floor a)) in
        Rat.(is_zero d) || Rat.(equal d one));
    prop "rat string round-trip" 200 arb_rat (fun a -> Rat.(equal a (of_string (to_string a))));
    prop "rat compare consistent with sub" 200 (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
        compare (Rat.compare a b) 0 = compare (Rat.sign (Rat.sub a b)) 0);
    prop "rat to_float close" 100 arb_rat (fun a ->
        let f = Rat.to_float a in
        Float.is_finite f);
  ]

(* ------------------------------------------------------------------ *)
(* Differential suite for the native-int fast arm: operands log-uniform
   across the 2^30 promotion boundary, every result checked against the
   naive bigint cross-product formula and against the canonical-
   representation invariant (a value sits on the fast arm exactly when
   its reduced form fits the bound). *)

let small_lim_b = Bigint.of_int (1 lsl 30)

(* magnitude log-uniform in [1, 2^34), random sign: roughly half the
   products and sums overflow the fast arm, half stay inside *)
let gen_boundary_int =
  QCheck.Gen.(
    let* bits = int_range 1 34 in
    let base = 1 lsl (bits - 1) in
    let* off = int_range 0 (base - 1) in
    let* neg = bool in
    return (if neg then -(base + off) else base + off))

let arb_boundary_rat =
  let gen =
    QCheck.Gen.(
      let* n = gen_boundary_int in
      let* d = gen_boundary_int in
      return (Rat.of_ints n d))
  in
  QCheck.make ~print:Rat.to_string gen

let canonical r =
  let n = Rat.num r and d = Rat.den r in
  Bigint.sign d > 0
  && Bigint.(equal (gcd n d) one)
  && Rat.is_small_repr r = (Bigint.(abs n < small_lim_b) && Bigint.(d < small_lim_b))

let ref_add x y =
  Rat.make
    Bigint.(add (mul (Rat.num x) (Rat.den y)) (mul (Rat.num y) (Rat.den x)))
    Bigint.(mul (Rat.den x) (Rat.den y))

let ref_mul x y = Rat.make Bigint.(mul (Rat.num x) (Rat.num y)) Bigint.(mul (Rat.den x) (Rat.den y))
let ref_div x y = Rat.make Bigint.(mul (Rat.num x) (Rat.den y)) Bigint.(mul (Rat.den x) (Rat.num y))

let ref_compare x y =
  Bigint.compare (Bigint.mul (Rat.num x) (Rat.den y)) (Bigint.mul (Rat.num y) (Rat.den x))

let boundary_pair = QCheck.pair arb_boundary_rat arb_boundary_rat

let fast_arm_props =
  [
    prop "boundary: add matches bigint reference" 500 boundary_pair (fun (x, y) ->
        let r = Rat.add x y in
        Rat.equal r (ref_add x y) && canonical r);
    prop "boundary: sub matches bigint reference" 500 boundary_pair (fun (x, y) ->
        let r = Rat.sub x y in
        Rat.equal r (ref_add x (Rat.neg y)) && canonical r);
    prop "boundary: mul matches bigint reference" 500 boundary_pair (fun (x, y) ->
        let r = Rat.mul x y in
        Rat.equal r (ref_mul x y) && canonical r);
    prop "boundary: div matches bigint reference" 500 boundary_pair (fun (x, y) ->
        QCheck.assume (not (Rat.is_zero y));
        let r = Rat.div x y in
        Rat.equal r (ref_div x y) && canonical r);
    prop "boundary: compare matches cross products" 500 boundary_pair (fun (x, y) ->
        compare (Rat.compare x y) 0 = compare (ref_compare x y) 0);
    prop "boundary: equal iff compare is zero" 500 boundary_pair (fun (x, y) ->
        Rat.equal x y = (Rat.compare x y = 0));
    prop "boundary: mul_int consistent" 500
      (QCheck.pair arb_boundary_rat (QCheck.int_range (-1048576) 1048576))
      (fun (x, k) -> Rat.(equal (mul_int x k) (mul x (of_int k))));
    prop "boundary: generator output is canonical" 500 arb_boundary_rat canonical;
    prop "promote then demote lands back on the fast arm" 300
      (QCheck.pair (QCheck.int_range (-9999) 9999) (QCheck.int_range 1 9999))
      (fun (n, d) ->
        let x = Rat.of_ints n d in
        let big = Rat.of_int (1 lsl 40) in
        let lifted = Rat.add x big in
        let r = Rat.sub lifted big in
        (not (Rat.is_small_repr lifted)) && Rat.equal r x && Rat.is_small_repr r);
  ]

let () =
  Alcotest.run "rtt_num"
    [
      ("bigint-rat units", unit_tests);
      ("properties", property_tests);
      ("fast-arm", fast_arm_props);
    ]
