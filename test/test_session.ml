(* Tests for the session subsystem: the mutation language round-trips
   over its wire form, a warm re-solve answers byte-for-byte what a
   cold solve of the same instance answers (the central invariant,
   checked as a qcheck property over random instances and random
   mutation sequences, under both simplex pricing rules), rejected
   mutations leave the session untouched, remove-job cascades and
   renumbers, and the per-session journal survives torn tails and
   replays to the identical state. *)

open Rtt_num
open Rtt_dag
open Rtt_duration
open Rtt_core
open Rtt_engine
open Rtt_session

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let rng_of seed = Random.State.make [| seed |]

let fresh_spool =
  let counter = ref 0 in
  fun tag ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "rtt_session_%s_%d_%d" tag (Unix.getpid ()) !counter)
    in
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    dir

let journal_path spool sid =
  Filename.concat (Filename.concat (Filename.concat spool "sessions") sid) "journal.log"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let append_bytes path s =
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc s;
  close_out oc

let must = function Ok v -> v | Error m -> Alcotest.fail m

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let must_solve t =
  match Session.solve t with
  | Ok s -> s
  | Error e -> Alcotest.fail (Error.to_string e)

let random_instance rng ~n =
  Problem.of_race_dag (Gen.erdos_renyi rng ~n ~edge_prob:0.4) Problem.Binary

(* a chain 0 -> 1 -> 2 with one two-step duration, for the unit tests *)
let chain3 () =
  let g = Dag.create () in
  let a = Dag.add_vertex g and b = Dag.add_vertex g and c = Dag.add_vertex g in
  Dag.add_edge g a b;
  Dag.add_edge g b c;
  Problem.make g ~durations:(fun v ->
      if v = 0 then Duration.make [ (0, 4); (1, 2) ] else Duration.make [ (0, 3) ])

(* ------------------------------------------------------------------ *)
(* op wire form                                                        *)

let random_tuples rng =
  let base = 1 + Random.State.int rng 7 in
  if Random.State.bool rng then [ (0, base) ]
  else [ (0, base); (1 + Random.State.int rng 3, base / 2) ]

let random_op rng ~n =
  match Random.State.int rng 12 with
  | 0 | 1 -> Session.Add_job (random_tuples rng)
  | 2 | 3 | 4 ->
      Session.Add_edge (Random.State.int rng n, Random.State.int rng n)
  | 5 | 6 -> Session.Set_duration (Random.State.int rng n, random_tuples rng)
  | 7 -> Session.Remove_job (Random.State.int rng n)
  | 8 ->
      Session.Set_alpha
        (List.nth
           [ Rat.of_ints 1 3; Rat.of_ints 2 5; Rat.of_ints 3 4 ]
           (Random.State.int rng 3))
  | 9 -> Session.Seed (Io.to_string (random_instance rng ~n:(3 + Random.State.int rng 3)))
  | _ -> Session.Set_budget (Random.State.int rng 7)

let op_units =
  [
    prop "ops round-trip through their wire form" 200 QCheck.(int_range 0 100_000)
      (fun seed ->
        let rng = rng_of seed in
        let op = random_op rng ~n:(1 + Random.State.int rng 8) in
        Session.op_of_string (Session.op_to_string op) = Ok op);
    Alcotest.test_case "seed bodies with hostile bytes survive escaping" `Quick (fun () ->
        let body = "vertices 1\n% \x00\xff tail" in
        match Session.op_of_string (Session.op_to_string (Session.Seed body)) with
        | Ok (Session.Seed body') -> Alcotest.(check string) "body" body body'
        | _ -> Alcotest.fail "seed did not round-trip");
    Alcotest.test_case "garbage op lines are rejected, not parsed" `Quick (fun () ->
        List.iter
          (fun line ->
            match Session.op_of_string line with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" line))
          [ ""; "frobnicate 3"; "add-edge 1"; "add-edge one two"; "set-budget"; "add-job 0:x" ]);
  ]

(* ------------------------------------------------------------------ *)
(* the central invariant: warm == cold, byte for byte                  *)

(* Drive one session through a seed + random mutation stream; after
   every accepted mutation, the session's (warm) answer must equal the
   answer a second, freshly replayed session — which holds no warm
   state — computes for the identical journaled instance. *)
let warm_equals_cold seed =
  let rng = rng_of seed in
  let spool = fresh_spool "prop" in
  let store = Session.create_store ~spool in
  let t = must (Session.open_ store "p") in
  let p0 = random_instance rng ~n:(4 + Random.State.int rng 3) in
  ignore (must (Session.mutate t (Session.Seed (Io.to_string p0))));
  ignore (must (Session.mutate t (Session.Set_budget (1 + Random.State.int rng 4))));
  let n = ref (Problem.n_jobs p0) in
  let checks = ref 0 in
  for _ = 1 to 4 + Random.State.int rng 3 do
    let op = random_op rng ~n:!n in
    match Session.mutate t op with
    | Error _ -> () (* rejected mutations are exercised, not required *)
    | Ok _ ->
        (match op with
        | Session.Add_job _ -> incr n
        | Session.Remove_job _ -> decr n
        | Session.Seed text -> n := Problem.n_jobs (Io.of_string text)
        | _ -> ());
        let w = must_solve t in
        (* a second store replays the same journal but remembers no
           previous answer: its solve is the cold reference *)
        let cold_store = Session.create_store ~spool in
        let c = must_solve (must (Session.open_ cold_store "p")) in
        if c.Session.warm then Alcotest.fail "replayed session claimed warm state";
        if not (String.equal w.Session.rendered c.Session.rendered) then
          Alcotest.fail
            (Printf.sprintf "warm and cold answers diverge after %s:\n--- warm\n%s--- cold\n%s"
               (Session.op_to_string op) w.Session.rendered c.Session.rendered);
        (* A warm re-solve may pay a few ticks MORE than cold on tiny
           instances: a stale basis hint costs one crash attempt (a
           tick per standard-form row) before the solve falls back,
           while the cold float advisor is free in exact ticks. The
           bound asserts warm re-solves never blow up; the >= 2x
           aggregate saving is what the S1 bench section gates. *)
        let warm_fuel = w.Session.success.Engine.fuel_spent in
        let cold_fuel = c.Session.success.Engine.fuel_spent in
        if warm_fuel > cold_fuel + max 16 (cold_fuel / 4) then
          Alcotest.fail
            (Printf.sprintf "warm re-solve burned far more fuel than the cold solve (%d > %d)"
               warm_fuel cold_fuel);
        incr checks
  done;
  !checks > 0

let with_pricing pricing f =
  let saved = !Rtt_lp.Simplex.pricing in
  Rtt_lp.Simplex.pricing := pricing;
  Fun.protect ~finally:(fun () -> Rtt_lp.Simplex.pricing := saved) f

let warm_props =
  [
    prop "warm re-solve == cold solve, byte for byte (Bland)" 12 QCheck.(int_range 0 100_000)
      (fun seed -> warm_equals_cold (2 * seed));
    prop "warm re-solve == cold solve, byte for byte (Dantzig)" 12 QCheck.(int_range 0 100_000)
      (fun seed -> with_pricing Rtt_lp.Simplex.Dantzig (fun () -> warm_equals_cold ((2 * seed) + 1)));
  ]

(* ------------------------------------------------------------------ *)
(* mutation semantics                                                  *)

let mutation_units =
  [
    Alcotest.test_case "seeded session answers what the engine answers" `Quick (fun () ->
        let spool = fresh_spool "seeded" in
        let store = Session.create_store ~spool in
        let t = must (Session.open_ store "s") in
        let p = chain3 () in
        ignore (must (Session.mutate t (Session.Seed (Io.to_string p))));
        ignore (must (Session.mutate t (Session.Set_budget 2)));
        let got = must_solve t in
        let cold =
          match Engine.solve p ~budget:2 with
          | Ok s -> s
          | Error e -> Alcotest.fail (Error.to_string e)
        in
        Alcotest.(check string) "rendered" (Session.cold_render p cold) got.Session.rendered;
        Alcotest.(check bool) "first solve is cold" false got.Session.warm;
        Alcotest.(check bool) "second solve is warm" true (must_solve t).Session.warm);
    Alcotest.test_case "rejected mutation leaves revision and answer untouched" `Quick (fun () ->
        let spool = fresh_spool "reject" in
        let store = Session.create_store ~spool in
        let t = must (Session.open_ store "s") in
        ignore (must (Session.mutate t (Session.Seed (Io.to_string (chain3 ())))));
        ignore (must (Session.mutate t (Session.Set_budget 1)));
        let rev = Session.revision t in
        let before = (must_solve t).Session.rendered in
        (match Session.mutate t (Session.Add_edge (0, 1)) with
        | Error msg ->
            Alcotest.(check bool) "names the edge" true
              (contains ~affix:"0 -> 1" msg || contains ~affix:"0 1" msg)
        | Ok _ -> Alcotest.fail "duplicate edge accepted");
        (match Session.mutate t (Session.Add_edge (2, 0)) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "cycle accepted");
        (match Session.mutate t (Session.Add_edge (0, 7)) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "out-of-range vertex accepted");
        Alcotest.(check int) "revision unchanged" rev (Session.revision t);
        Alcotest.(check string) "answer unchanged" before (must_solve t).Session.rendered);
    Alcotest.test_case "remove-job cascades edges and renumbers vertices" `Quick (fun () ->
        let spool = fresh_spool "cascade" in
        let store = Session.create_store ~spool in
        let t = must (Session.open_ store "s") in
        ignore (must (Session.mutate t (Session.Seed (Io.to_string (chain3 ())))));
        ignore (must (Session.mutate t (Session.Set_budget 1)));
        (* drop the middle of 0 -> 1 -> 2: both incident edges go, and
           vertex 2 becomes vertex 1 *)
        ignore (must (Session.mutate t (Session.Remove_job 1)));
        (match Session.mutate t (Session.Add_edge (1, 2)) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "stale vertex number accepted after renumbering");
        ignore (must (Session.mutate t (Session.Add_edge (0, 1))));
        ignore (must_solve t));
  ]

(* ------------------------------------------------------------------ *)
(* journal durability                                                  *)

let journal_units =
  [
    Alcotest.test_case "torn journal tail is sealed on reopen" `Quick (fun () ->
        let spool = fresh_spool "torn" in
        let store = Session.create_store ~spool in
        let t = must (Session.open_ store "s") in
        ignore (must (Session.mutate t (Session.Seed (Io.to_string (chain3 ())))));
        ignore (must (Session.mutate t (Session.Set_budget 2)));
        ignore (must (Session.mutate t (Session.Add_edge (0, 2))));
        let before = (must_solve t).Session.rendered in
        let j = journal_path spool "s" in
        let intact = read_file j in
        append_bytes j "mut half-a-frame with no terminating newl";
        (* a fresh store is the restarted process: the torn tail is
           sealed, the committed prefix replays, the answer is intact *)
        let store2 = Session.create_store ~spool in
        let t2 = must (Session.open_ store2 "s") in
        Alcotest.(check int) "revision replayed" 3 (Session.revision t2);
        Alcotest.(check string) "journal sealed" intact (read_file j);
        Alcotest.(check string) "answer identical" before (must_solve t2).Session.rendered);
    Alcotest.test_case "seal_journal truncates to the committed prefix" `Quick (fun () ->
        let spool = fresh_spool "seal" in
        let store = Session.create_store ~spool in
        let t = must (Session.open_ store "s") in
        ignore (must (Session.mutate t (Session.Seed (Io.to_string (chain3 ())))));
        ignore (must (Session.mutate t (Session.Set_budget 3)));
        let j = journal_path spool "s" in
        let intact = read_file j in
        (* cut the last committed record in half, as a crash mid-append
           would: only the first record survives the seal *)
        let cut = String.length intact - 7 in
        let oc = open_out_bin j in
        output_string oc (String.sub intact 0 cut);
        close_out oc;
        Alcotest.(check int) "committed records" 1 (Session.seal_journal j);
        let sealed = read_file j in
        Alcotest.(check bool) "sealed to a record boundary" true
          (String.length sealed < cut && String.length sealed > 0);
        let store2 = Session.create_store ~spool in
        let t2 = must (Session.open_ store2 "s") in
        Alcotest.(check int) "only the seed survived" 1 (Session.revision t2));
    Alcotest.test_case "close deletes; list_sids tracks journals" `Quick (fun () ->
        let spool = fresh_spool "list" in
        let store = Session.create_store ~spool in
        let a = must (Session.open_ store "a") in
        let b = must (Session.open_ store "b") in
        ignore (must (Session.mutate a (Session.Set_budget 1)));
        ignore (must (Session.mutate b (Session.Set_budget 1)));
        Alcotest.(check (list string)) "both listed" [ "a"; "b" ] (Session.list_sids ~spool);
        Session.close store a;
        Alcotest.(check (list string)) "a gone" [ "b" ] (Session.list_sids ~spool);
        Alcotest.(check bool) "a forgotten" true (Session.find store "a" = None);
        let a' = must (Session.open_ store "a") in
        Alcotest.(check int) "reopened fresh" 0 (Session.revision a'));
    Alcotest.test_case "bad session ids are refused" `Quick (fun () ->
        List.iter
          (fun sid -> Alcotest.(check bool) sid false (Session.valid_sid sid))
          [ ""; "."; ".."; "a/b"; "a b"; String.make 65 'x' ];
        List.iter
          (fun sid -> Alcotest.(check bool) sid true (Session.valid_sid sid))
          [ "a"; "bench-s1"; "A.b_c-9"; String.make 64 'x' ]);
  ]

let () =
  Alcotest.run "session"
    [
      ("ops", op_units);
      ("warm-equals-cold", warm_props);
      ("mutations", mutation_units);
      ("journal", journal_units);
    ]
