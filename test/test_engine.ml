(* Tests for the hardened solver engine: structured errors, fuel
   budgets, fallback chains, certificate validation, and fault
   injection. The acceptance-critical scenarios: an injected simplex
   fault degrades to the greedy rung (visibly, not as an exception);
   exhausting fuel on the exact rung of a 20-job instance terminates
   with Fuel_exhausted and falls back; corrupting a returned allocation
   by one unit on one vertex is caught as Certificate_mismatch. *)

open Rtt_dag
open Rtt_core
open Rtt_num
open Rtt_engine

let rng_of seed = Random.State.make [| seed |]

(* The Figure 4/5 instance: node c (vertex 3) has in-degree 6; the
   optimum at budget 2 puts both units on c for makespan 10. *)
let fig45 () =
  let g = Dag.create () in
  let s = Dag.add_vertex ~label:"s" g in
  let a = Dag.add_vertex ~label:"a" g in
  let b = Dag.add_vertex ~label:"b" g in
  let c = Dag.add_vertex ~label:"c" g in
  let d = Dag.add_vertex ~label:"d" g in
  let t = Dag.add_vertex ~label:"t" g in
  let xs = List.init 5 (fun i -> Dag.add_vertex ~label:(Printf.sprintf "x%d" i) g) in
  Dag.add_edge g s a;
  Dag.add_edge g a b;
  Dag.add_edge g b c;
  List.iter
    (fun x ->
      Dag.add_edge g s x;
      Dag.add_edge g x c)
    xs;
  Dag.add_edge g c d;
  Dag.add_edge g (List.hd xs) d;
  Dag.add_edge g d t;
  Problem.of_race_dag g Problem.Binary

let random_instance rng ~n kind =
  Problem.of_race_dag (Gen.erdos_renyi rng ~n ~edge_prob:0.35) kind

let check_ok what = function
  | Ok s -> s
  | Error e -> Alcotest.failf "%s: engine failed with %s" what (Error.to_string e)

let plain_claim rung allocation makespan budget_used budget =
  {
    Validate.rung;
    allocation;
    makespan;
    budget_used;
    budget;
    alpha = None;
    lp_makespan = None;
    lp_budget = None;
  }

(* ------------------------------------------------------------------ *)
(* (a) without fuel limits or faults, the engine is a transparent
   wrapper: same answers as calling the algorithms directly            *)

let agreement_units =
  let check_rung rung ~seed ~runs check =
    let rng = rng_of seed in
    for _ = 1 to runs do
      let p = random_instance rng ~n:(6 + Random.State.int rng 3) Problem.Binary in
      let budget = Random.State.int rng 5 in
      let s = check_ok (Policy.rung_name rung) (Engine.solve ~policy:[ rung ] p ~budget) in
      Alcotest.(check (list bool)) "not degraded" [] (List.map (fun _ -> true) s.Engine.degraded);
      check p ~budget s
    done
  in
  [
    Alcotest.test_case "exact rung equals direct Exact" `Quick (fun () ->
        check_rung Policy.Exact ~seed:101 ~runs:12 (fun p ~budget s ->
            let r = Exact.min_makespan p ~budget in
            Alcotest.(check int) "makespan" r.Exact.makespan s.Engine.makespan;
            Alcotest.(check int) "budget" r.Exact.budget_used s.Engine.budget_used));
    Alcotest.test_case "bicriteria rung equals direct Bicriteria" `Quick (fun () ->
        check_rung Policy.Bicriteria ~seed:102 ~runs:12 (fun p ~budget s ->
            let bi = Bicriteria.min_makespan p ~budget ~alpha:Rat.half in
            Alcotest.(check int) "makespan" bi.Bicriteria.rounded.Rounding.makespan
              s.Engine.makespan;
            Alcotest.(check int) "budget" bi.Bicriteria.rounded.Rounding.budget_used
              s.Engine.budget_used));
    Alcotest.test_case "greedy rung equals direct Greedy" `Quick (fun () ->
        check_rung Policy.Greedy ~seed:103 ~runs:12 (fun p ~budget s ->
            let r = Greedy.min_makespan p ~budget in
            Alcotest.(check int) "makespan" r.Greedy.makespan s.Engine.makespan;
            Alcotest.(check int) "budget" r.Greedy.budget_used s.Engine.budget_used));
    Alcotest.test_case "default policy answers from the exact rung" `Quick (fun () ->
        let rng = rng_of 104 in
        for _ = 1 to 8 do
          let p = random_instance rng ~n:7 Problem.Binary in
          let budget = Random.State.int rng 4 in
          let s = check_ok "default" (Engine.solve p ~budget) in
          Alcotest.(check string) "rung" "exact" (Policy.rung_name s.Engine.rung);
          Alcotest.(check bool) "not degraded" false (Engine.degraded_to s);
          Alcotest.(check int) "optimal" (Exact.min_makespan p ~budget).Exact.makespan
            s.Engine.makespan
        done);
    Alcotest.test_case "every rung validates its own genuine answer" `Quick (fun () ->
        List.iter
          (fun rung ->
            let rng = rng_of 105 in
            for _ = 1 to 6 do
              let kind = if rung = Policy.Kway then Problem.Kway else Problem.Binary in
              let p = random_instance rng ~n:(5 + Random.State.int rng 4) kind in
              let budget = Random.State.int rng 5 in
              ignore (check_ok (Policy.rung_name rung) (Engine.solve ~policy:[ rung ] p ~budget))
            done)
          Policy.all_rungs);
    Alcotest.test_case "deterministic: same query, same outcome" `Quick (fun () ->
        let p = random_instance (rng_of 106) ~n:10 Problem.Binary in
        let once () =
          match Engine.solve ~fuel:400 p ~budget:3 with
          | Ok s ->
              ( "ok",
                Policy.rung_name s.Engine.rung,
                s.Engine.makespan,
                s.Engine.fuel_spent,
                List.length s.Engine.degraded )
          | Error e -> (Error.class_name e, "", 0, 0, 0)
        in
        let a = once () and b = once () in
        Alcotest.(check bool) "equal outcomes" true (a = b));
  ]

(* ------------------------------------------------------------------ *)
(* (b) fallback chains: every rung is reachable under injected faults  *)

let fallback_units =
  [
    Alcotest.test_case "injected LP fault degrades to greedy, not an exception" `Quick (fun () ->
        let p = random_instance (rng_of 201) ~n:9 Problem.Binary in
        let s =
          Faults.with_fault Faults.Lp_infeasible (fun () ->
              check_ok "lp fault" (Engine.solve ~policy:[ Policy.Bicriteria; Policy.Greedy ] p ~budget:3))
        in
        Alcotest.(check string) "rung" "greedy" (Policy.rung_name s.Engine.rung);
        Alcotest.(check bool) "degraded" true (Engine.degraded_to s);
        (match s.Engine.degraded with
        | [ { Engine.rung = Policy.Bicriteria; error = Error.Lp_failure _ } ] -> ()
        | _ -> Alcotest.fail "expected a single bicriteria/Lp_failure report");
        let direct = Greedy.min_makespan p ~budget:3 in
        Alcotest.(check int) "greedy answer" direct.Greedy.makespan s.Engine.makespan);
    Alcotest.test_case "fuel exhaustion on exact (20 jobs) falls back" `Quick (fun () ->
        let p = random_instance (rng_of 202) ~n:20 Problem.Binary in
        (* fewer steps than one branch-and-bound dive over 20 jobs, so
           the exact rung cannot even reach its first leaf *)
        let s = check_ok "fuel" (Engine.solve ~fuel:15 p ~budget:3) in
        Alcotest.(check bool) "not exact" true (s.Engine.rung <> Policy.Exact);
        (match s.Engine.degraded with
        | { Engine.rung = Policy.Exact; error = Error.Fuel_exhausted { stage; spent } } :: _ ->
            Alcotest.(check string) "stage" "exact" stage;
            Alcotest.(check bool) "spent counted" true (spent > 0)
        | _ -> Alcotest.fail "expected exact to fail first with Fuel_exhausted"));
    Alcotest.test_case "fuel-zero fault reaches the bicriteria rung" `Quick (fun () ->
        let p = random_instance (rng_of 203) ~n:8 Problem.Binary in
        let s =
          Faults.with_fault ~after:5 Faults.Fuel_zero (fun () ->
              check_ok "fuel zero" (Engine.solve ~fuel:1_000_000_000 p ~budget:3))
        in
        Alcotest.(check string) "rung" "bicriteria" (Policy.rung_name s.Engine.rung);
        match s.Engine.degraded with
        | [ { Engine.rung = Policy.Exact; error = Error.Fuel_exhausted _ } ] -> ()
        | _ -> Alcotest.fail "expected exact to die of the zeroed fuel");
    Alcotest.test_case "two faults reach the greedy rung of the default chain" `Quick (fun () ->
        let p = random_instance (rng_of 204) ~n:8 Problem.Binary in
        let s =
          Fun.protect ~finally:Faults.reset (fun () ->
              Faults.arm ~after:5 Faults.Fuel_zero;
              Faults.arm Faults.Lp_infeasible;
              check_ok "two faults" (Engine.solve ~fuel:1_000_000_000 p ~budget:3))
        in
        Alcotest.(check string) "rung" "greedy" (Policy.rung_name s.Engine.rung);
        Alcotest.(check int) "two rungs skipped" 2 (List.length s.Engine.degraded));
    Alcotest.test_case "flow-abort fault degrades greedy to baseline" `Quick (fun () ->
        let p = fig45 () in
        let s =
          Faults.with_fault Faults.Flow_abort (fun () ->
              check_ok "flow abort"
                (Engine.solve ~policy:[ Policy.Greedy; Policy.Baseline ] p ~budget:2))
        in
        Alcotest.(check string) "rung" "baseline" (Policy.rung_name s.Engine.rung);
        (match s.Engine.degraded with
        | [ { Engine.rung = Policy.Greedy; error } ] -> (
            match error with
            | Error.Fault_injected _ | Error.Flow_failure _ -> ()
            | e -> Alcotest.failf "unexpected error class %s" (Error.class_name e))
        | _ -> Alcotest.fail "expected a single greedy report");
        Alcotest.(check int) "baseline budget" 0 s.Engine.budget_used;
        Alcotest.(check int) "baseline makespan" 11 s.Engine.makespan);
    Alcotest.test_case "zero fuel degrades all the way to baseline" `Quick (fun () ->
        let p = fig45 () in
        let s = check_ok "zero fuel" (Engine.solve ~fuel:0 p ~budget:2) in
        Alcotest.(check string) "rung" "baseline" (Policy.rung_name s.Engine.rung);
        Alcotest.(check int) "three rungs skipped" 3 (List.length s.Engine.degraded);
        List.iter
          (fun (r : Engine.report) ->
            match r.Engine.error with
            | Error.Fuel_exhausted _ -> ()
            | e -> Alcotest.failf "expected fuel exhaustion, got %s" (Error.class_name e))
          s.Engine.degraded);
    Alcotest.test_case "a one-rung chain fails with its own error class" `Quick (fun () ->
        let p = random_instance (rng_of 205) ~n:20 Problem.Binary in
        match Engine.solve ~fuel:10 ~policy:[ Policy.Exact ] p ~budget:3 with
        | Error (Error.Fuel_exhausted { stage = "exact"; _ }) -> ()
        | Error e -> Alcotest.failf "expected Fuel_exhausted, got %s" (Error.class_name e)
        | Ok _ -> Alcotest.fail "expected failure under 10 fuel");
    Alcotest.test_case "faults do not leak into later solves" `Quick (fun () ->
        let p = fig45 () in
        (try
           ignore
             (Faults.with_fault Faults.Lp_infeasible (fun () ->
                  Engine.solve ~policy:[ Policy.Bicriteria ] p ~budget:2))
         with _ -> ());
        let s = check_ok "clean" (Engine.solve ~policy:[ Policy.Bicriteria ] p ~budget:2) in
        Alcotest.(check bool) "not degraded" false (Engine.degraded_to s));
  ]

(* ------------------------------------------------------------------ *)
(* (c) certificate validation                                          *)

let validation_units =
  [
    Alcotest.test_case "genuine exact certificate validates" `Quick (fun () ->
        let p = fig45 () in
        let r = Exact.min_makespan p ~budget:2 in
        let claim = plain_claim Policy.Exact r.Exact.allocation r.Exact.makespan r.Exact.budget_used 2 in
        match Validate.check p claim with
        | Ok () -> ()
        | Error e -> Alcotest.failf "rejected a genuine certificate: %s" (Error.to_string e));
    Alcotest.test_case "corrupting one vertex by -1 is a Certificate_mismatch" `Quick (fun () ->
        let p = fig45 () in
        let r = Exact.min_makespan p ~budget:2 in
        (* vertex 3 is c, the fan-in hub holding both units *)
        Alcotest.(check int) "c gets both units" 2 r.Exact.allocation.(3);
        let claim =
          plain_claim Policy.Exact
            (Validate.corrupt r.Exact.allocation ~vertex:3 ~delta:(-1))
            r.Exact.makespan r.Exact.budget_used 2
        in
        (match Validate.check p claim with
        | Error (Error.Certificate_mismatch _) -> ()
        | Error e -> Alcotest.failf "wrong error class %s" (Error.class_name e)
        | Ok () -> Alcotest.fail "validator accepted a corrupted allocation"));
    Alcotest.test_case "corrupting one vertex by +1 is a Certificate_mismatch" `Quick (fun () ->
        let p = fig45 () in
        let r = Exact.min_makespan p ~budget:2 in
        let claim =
          plain_claim Policy.Exact
            (Validate.corrupt r.Exact.allocation ~vertex:3 ~delta:1)
            r.Exact.makespan r.Exact.budget_used 2
        in
        (match Validate.check p claim with
        | Error (Error.Certificate_mismatch _) -> ()
        | Error e -> Alcotest.failf "wrong error class %s" (Error.class_name e)
        | Ok () -> Alcotest.fail "validator accepted a corrupted allocation"));
    Alcotest.test_case "randomized: validator flags exactly the real corruptions" `Quick (fun () ->
        let rng = rng_of 301 in
        for _ = 1 to 10 do
          let p = random_instance rng ~n:(6 + Random.State.int rng 3) Problem.Binary in
          let budget = 1 + Random.State.int rng 4 in
          let r = Exact.min_makespan p ~budget in
          for v = 0 to Problem.n_jobs p - 1 do
            List.iter
              (fun delta ->
                if r.Exact.allocation.(v) + delta >= 0 then begin
                  let corrupted = Validate.corrupt r.Exact.allocation ~vertex:v ~delta in
                  let really_changed =
                    Schedule.makespan p corrupted <> r.Exact.makespan
                    || Schedule.min_budget p corrupted <> r.Exact.budget_used
                  in
                  let claim =
                    plain_claim Policy.Exact corrupted r.Exact.makespan r.Exact.budget_used budget
                  in
                  match (Validate.check p claim, really_changed) with
                  | Error (Error.Certificate_mismatch _), true | Ok (), false -> ()
                  | Ok (), true -> Alcotest.fail "validator missed a corrupted certificate"
                  | Error e, false ->
                      Alcotest.failf "validator rejected an unchanged certificate: %s"
                        (Error.to_string e)
                  | Error e, true -> Alcotest.failf "wrong error class %s" (Error.class_name e)
                end)
              [ -1; 1 ]
          done
        done);
    Alcotest.test_case "claimed approximation bound is enforced" `Quick (fun () ->
        let p = fig45 () in
        let bi = Bicriteria.min_makespan p ~budget:2 ~alpha:Rat.half in
        let base =
          {
            Validate.rung = Policy.Bicriteria;
            allocation = bi.Bicriteria.rounded.Rounding.allocation;
            makespan = bi.Bicriteria.rounded.Rounding.makespan;
            budget_used = bi.Bicriteria.rounded.Rounding.budget_used;
            budget = 2;
            alpha = Some Rat.half;
            lp_makespan = Some bi.Bicriteria.lp.Lp_relax.makespan;
            lp_budget = Some bi.Bicriteria.lp.Lp_relax.budget_used;
          }
        in
        (match Validate.check p base with
        | Ok () -> ()
        | Error e -> Alcotest.failf "rejected a genuine bicriteria claim: %s" (Error.to_string e));
        (* shrink the claimed LP bound until the 1/alpha factor is violated *)
        let tiny = Rat.of_ints 1 100 in
        let forged = { base with Validate.lp_makespan = Some tiny } in
        match Validate.check p forged with
        | Error (Error.Certificate_mismatch { what = "approximation bound"; _ }) -> ()
        | Error e -> Alcotest.failf "wrong error class %s" (Error.class_name e)
        | Ok () -> Alcotest.fail "validator accepted a forged LP bound");
    Alcotest.test_case "wrong-length allocation is a Certificate_mismatch" `Quick (fun () ->
        let p = fig45 () in
        let claim = plain_claim Policy.Baseline [| 0 |] 11 0 0 in
        match Validate.check p claim with
        | Error (Error.Certificate_mismatch _) -> ()
        | _ -> Alcotest.fail "expected a mismatch");
  ]

(* ------------------------------------------------------------------ *)
(* structured errors at the boundary                                   *)

let boundary_units =
  [
    Alcotest.test_case "parse errors carry line numbers through the engine" `Quick (fun () ->
        (match Engine.load_string "vertices 2\nduration 0 nope" with
        | Error (Error.Parse_error { line = 2; _ }) -> ()
        | Error e -> Alcotest.failf "wrong error %s" (Error.to_string e)
        | Ok _ -> Alcotest.fail "accepted malformed input");
        match Engine.load "/nonexistent/instance.rtt" with
        | Error (Error.Io_error _) -> ()
        | Error e -> Alcotest.failf "wrong error %s" (Error.to_string e)
        | Ok _ -> Alcotest.fail "loaded a nonexistent file");
    Alcotest.test_case "invalid requests are rejected, not raised" `Quick (fun () ->
        let p = fig45 () in
        (match Engine.solve p ~budget:(-1) with
        | Error (Error.Invalid_request _) -> ()
        | _ -> Alcotest.fail "negative budget accepted");
        (match Engine.solve ~alpha:Rat.two p ~budget:2 with
        | Error (Error.Invalid_request _) -> ()
        | _ -> Alcotest.fail "alpha = 2 accepted");
        match Engine.solve ~policy:[] p ~budget:2 with
        | Error (Error.Invalid_request _) -> ()
        | _ -> Alcotest.fail "empty policy accepted");
    Alcotest.test_case "exit codes are stable and distinct per class" `Quick (fun () ->
        let samples =
          [
            Error.Parse_error { line = 1; msg = "" };
            Error.Io_error "";
            Error.Invalid_instance "";
            Error.Invalid_request "";
            Error.Too_large { states = 0 };
            Error.Fuel_exhausted { stage = ""; spent = 0 };
            Error.Lp_failure "";
            Error.Flow_failure "";
            Error.Fault_injected { site = "" };
            Error.Certificate_mismatch { what = ""; expected = ""; got = "" };
            Error.All_rungs_failed [];
            Error.Internal "";
          ]
        in
        let codes = List.map Error.exit_code samples in
        Alcotest.(check bool) "all nonzero" true (List.for_all (fun c -> c > 1) codes);
        Alcotest.(check int) "distinct" (List.length codes)
          (List.length (List.sort_uniq compare codes)));
    Alcotest.test_case "policy round-trips through of_string" `Quick (fun () ->
        (match Policy.of_string (Policy.to_string Policy.default) with
        | Ok p -> Alcotest.(check string) "round trip" (Policy.to_string Policy.default)
                    (Policy.to_string p)
        | Error m -> Alcotest.failf "rejected default policy: %s" m);
        (match Policy.of_string "exact, greedy" with
        | Ok [ Policy.Exact; Policy.Greedy ] -> ()
        | _ -> Alcotest.fail "spaces around commas should be accepted");
        match Policy.of_string "exact,nope" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "unknown rung accepted");
    Alcotest.test_case "too-large exact instances fail structurally" `Quick (fun () ->
        (* fig45's hub vertex has two duration options at budget 2, so
           the state space strictly exceeds a cap of one state *)
        let p = fig45 () in
        match Engine.solve ~max_states:1 ~policy:[ Policy.Exact ] p ~budget:2 with
        | Error (Error.Too_large { states }) -> Alcotest.(check bool) "states" true (states > 1)
        | Error e -> Alcotest.failf "wrong error %s" (Error.class_name e)
        | Ok _ -> Alcotest.fail "expected Too_large");
  ]

let () =
  Alcotest.run "engine"
    [
      ("agreement", agreement_units);
      ("fallback", fallback_units);
      ("validation", validation_units);
      ("boundary", boundary_units);
    ]
