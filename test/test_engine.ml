(* Tests for the hardened solver engine: structured errors, fuel
   budgets, fallback chains, certificate validation, and fault
   injection. The acceptance-critical scenarios: an injected simplex
   fault degrades to the greedy rung (visibly, not as an exception);
   exhausting fuel on the exact rung of a 20-job instance terminates
   with Fuel_exhausted and falls back; corrupting a returned allocation
   by one unit on one vertex is caught as Certificate_mismatch. *)

open Rtt_dag
open Rtt_core
open Rtt_num
open Rtt_engine

let rng_of seed = Random.State.make [| seed |]

(* The Figure 4/5 instance: node c (vertex 3) has in-degree 6; the
   optimum at budget 2 puts both units on c for makespan 10. *)
let fig45 () =
  let g = Dag.create () in
  let s = Dag.add_vertex ~label:"s" g in
  let a = Dag.add_vertex ~label:"a" g in
  let b = Dag.add_vertex ~label:"b" g in
  let c = Dag.add_vertex ~label:"c" g in
  let d = Dag.add_vertex ~label:"d" g in
  let t = Dag.add_vertex ~label:"t" g in
  let xs = List.init 5 (fun i -> Dag.add_vertex ~label:(Printf.sprintf "x%d" i) g) in
  Dag.add_edge g s a;
  Dag.add_edge g a b;
  Dag.add_edge g b c;
  List.iter
    (fun x ->
      Dag.add_edge g s x;
      Dag.add_edge g x c)
    xs;
  Dag.add_edge g c d;
  Dag.add_edge g (List.hd xs) d;
  Dag.add_edge g d t;
  Problem.of_race_dag g Problem.Binary

let random_instance rng ~n kind =
  Problem.of_race_dag (Gen.erdos_renyi rng ~n ~edge_prob:0.35) kind

let check_ok what = function
  | Ok s -> s
  | Error e -> Alcotest.failf "%s: engine failed with %s" what (Error.to_string e)

let plain_claim rung allocation makespan budget_used budget =
  {
    Validate.rung;
    allocation;
    makespan;
    budget_used;
    budget;
    alpha = None;
    lp_makespan = None;
    lp_budget = None;
  }

(* ------------------------------------------------------------------ *)
(* (a) without fuel limits or faults, the engine is a transparent
   wrapper: same answers as calling the algorithms directly            *)

let agreement_units =
  let check_rung rung ~seed ~runs check =
    let rng = rng_of seed in
    for _ = 1 to runs do
      let p = random_instance rng ~n:(6 + Random.State.int rng 3) Problem.Binary in
      let budget = Random.State.int rng 5 in
      let s = check_ok (Policy.rung_name rung) (Engine.solve ~policy:[ rung ] p ~budget) in
      Alcotest.(check (list bool)) "not degraded" [] (List.map (fun _ -> true) s.Engine.degraded);
      check p ~budget s
    done
  in
  [
    Alcotest.test_case "exact rung equals direct Exact" `Quick (fun () ->
        check_rung Policy.Exact ~seed:101 ~runs:12 (fun p ~budget s ->
            let r = Exact.min_makespan p ~budget in
            Alcotest.(check int) "makespan" r.Exact.makespan s.Engine.makespan;
            Alcotest.(check int) "budget" r.Exact.budget_used s.Engine.budget_used));
    Alcotest.test_case "bicriteria rung equals direct Bicriteria" `Quick (fun () ->
        check_rung Policy.Bicriteria ~seed:102 ~runs:12 (fun p ~budget s ->
            let bi = Bicriteria.min_makespan p ~budget ~alpha:Rat.half in
            Alcotest.(check int) "makespan" bi.Bicriteria.rounded.Rounding.makespan
              s.Engine.makespan;
            Alcotest.(check int) "budget" bi.Bicriteria.rounded.Rounding.budget_used
              s.Engine.budget_used));
    Alcotest.test_case "greedy rung equals direct Greedy" `Quick (fun () ->
        check_rung Policy.Greedy ~seed:103 ~runs:12 (fun p ~budget s ->
            let r = Greedy.min_makespan p ~budget in
            Alcotest.(check int) "makespan" r.Greedy.makespan s.Engine.makespan;
            Alcotest.(check int) "budget" r.Greedy.budget_used s.Engine.budget_used));
    Alcotest.test_case "default policy answers from the exact rung" `Quick (fun () ->
        let rng = rng_of 104 in
        for _ = 1 to 8 do
          let p = random_instance rng ~n:7 Problem.Binary in
          let budget = Random.State.int rng 4 in
          let s = check_ok "default" (Engine.solve p ~budget) in
          Alcotest.(check string) "rung" "exact" (Policy.rung_name s.Engine.rung);
          Alcotest.(check bool) "not degraded" false (Engine.degraded_to s);
          Alcotest.(check int) "optimal" (Exact.min_makespan p ~budget).Exact.makespan
            s.Engine.makespan
        done);
    Alcotest.test_case "every rung validates its own genuine answer" `Quick (fun () ->
        List.iter
          (fun rung ->
            let rng = rng_of 105 in
            for _ = 1 to 6 do
              let kind = if rung = Policy.Kway then Problem.Kway else Problem.Binary in
              let p = random_instance rng ~n:(5 + Random.State.int rng 4) kind in
              let budget = Random.State.int rng 5 in
              ignore (check_ok (Policy.rung_name rung) (Engine.solve ~policy:[ rung ] p ~budget))
            done)
          Policy.all_rungs);
    Alcotest.test_case "deterministic: same query, same outcome" `Quick (fun () ->
        let p = random_instance (rng_of 106) ~n:10 Problem.Binary in
        let once () =
          match Engine.solve ~fuel:400 p ~budget:3 with
          | Ok s ->
              ( "ok",
                Policy.rung_name s.Engine.rung,
                s.Engine.makespan,
                s.Engine.fuel_spent,
                List.length s.Engine.degraded )
          | Error e -> (Error.class_name e, "", 0, 0, 0)
        in
        let a = once () and b = once () in
        Alcotest.(check bool) "equal outcomes" true (a = b));
  ]

(* ------------------------------------------------------------------ *)
(* (b) fallback chains: every rung is reachable under injected faults  *)

let fallback_units =
  [
    Alcotest.test_case "injected LP fault degrades to greedy, not an exception" `Quick (fun () ->
        let p = random_instance (rng_of 201) ~n:9 Problem.Binary in
        let s =
          Faults.with_fault Faults.Lp_infeasible (fun () ->
              check_ok "lp fault" (Engine.solve ~policy:[ Policy.Bicriteria; Policy.Greedy ] p ~budget:3))
        in
        Alcotest.(check string) "rung" "greedy" (Policy.rung_name s.Engine.rung);
        Alcotest.(check bool) "degraded" true (Engine.degraded_to s);
        (match s.Engine.degraded with
        | [ { Engine.rung = Policy.Bicriteria; error = Error.Lp_failure _ } ] -> ()
        | _ -> Alcotest.fail "expected a single bicriteria/Lp_failure report");
        let direct = Greedy.min_makespan p ~budget:3 in
        Alcotest.(check int) "greedy answer" direct.Greedy.makespan s.Engine.makespan);
    Alcotest.test_case "fuel exhaustion on exact (20 jobs) falls back" `Quick (fun () ->
        let p = random_instance (rng_of 202) ~n:20 Problem.Binary in
        (* fewer steps than one branch-and-bound dive over 20 jobs, so
           the exact rung cannot even reach its first leaf *)
        let s = check_ok "fuel" (Engine.solve ~fuel:15 p ~budget:3) in
        Alcotest.(check bool) "not exact" true (s.Engine.rung <> Policy.Exact);
        (match s.Engine.degraded with
        | { Engine.rung = Policy.Exact; error = Error.Fuel_exhausted { stage; spent } } :: _ ->
            Alcotest.(check string) "stage" "exact" stage;
            Alcotest.(check bool) "spent counted" true (spent > 0)
        | _ -> Alcotest.fail "expected exact to fail first with Fuel_exhausted"));
    Alcotest.test_case "fuel-zero fault reaches the bicriteria rung" `Quick (fun () ->
        let p = random_instance (rng_of 203) ~n:8 Problem.Binary in
        let s =
          Faults.with_fault ~after:5 Faults.Fuel_zero (fun () ->
              check_ok "fuel zero" (Engine.solve ~fuel:1_000_000_000 p ~budget:3))
        in
        Alcotest.(check string) "rung" "bicriteria" (Policy.rung_name s.Engine.rung);
        match s.Engine.degraded with
        | [ { Engine.rung = Policy.Exact; error = Error.Fuel_exhausted _ } ] -> ()
        | _ -> Alcotest.fail "expected exact to die of the zeroed fuel");
    Alcotest.test_case "two faults reach the greedy rung of the default chain" `Quick (fun () ->
        let p = random_instance (rng_of 204) ~n:8 Problem.Binary in
        let s =
          Fun.protect ~finally:Faults.reset (fun () ->
              Faults.arm ~after:5 Faults.Fuel_zero;
              Faults.arm Faults.Lp_infeasible;
              check_ok "two faults" (Engine.solve ~fuel:1_000_000_000 p ~budget:3))
        in
        Alcotest.(check string) "rung" "greedy" (Policy.rung_name s.Engine.rung);
        Alcotest.(check int) "two rungs skipped" 2 (List.length s.Engine.degraded));
    Alcotest.test_case "flow-abort fault degrades greedy to baseline" `Quick (fun () ->
        let p = fig45 () in
        let s =
          Faults.with_fault Faults.Flow_abort (fun () ->
              check_ok "flow abort"
                (Engine.solve ~policy:[ Policy.Greedy; Policy.Baseline ] p ~budget:2))
        in
        Alcotest.(check string) "rung" "baseline" (Policy.rung_name s.Engine.rung);
        (match s.Engine.degraded with
        | [ { Engine.rung = Policy.Greedy; error } ] -> (
            match error with
            | Error.Fault_injected _ | Error.Flow_failure _ -> ()
            | e -> Alcotest.failf "unexpected error class %s" (Error.class_name e))
        | _ -> Alcotest.fail "expected a single greedy report");
        Alcotest.(check int) "baseline budget" 0 s.Engine.budget_used;
        Alcotest.(check int) "baseline makespan" 11 s.Engine.makespan);
    Alcotest.test_case "zero fuel degrades all the way to baseline" `Quick (fun () ->
        let p = fig45 () in
        let s = check_ok "zero fuel" (Engine.solve ~fuel:0 p ~budget:2) in
        Alcotest.(check string) "rung" "baseline" (Policy.rung_name s.Engine.rung);
        Alcotest.(check int) "three rungs skipped" 3 (List.length s.Engine.degraded);
        List.iter
          (fun (r : Engine.report) ->
            match r.Engine.error with
            | Error.Fuel_exhausted _ -> ()
            | e -> Alcotest.failf "expected fuel exhaustion, got %s" (Error.class_name e))
          s.Engine.degraded);
    Alcotest.test_case "a one-rung chain fails with its own error class" `Quick (fun () ->
        let p = random_instance (rng_of 205) ~n:20 Problem.Binary in
        match Engine.solve ~fuel:10 ~policy:[ Policy.Exact ] p ~budget:3 with
        | Error (Error.Fuel_exhausted { stage = "exact"; _ }) -> ()
        | Error e -> Alcotest.failf "expected Fuel_exhausted, got %s" (Error.class_name e)
        | Ok _ -> Alcotest.fail "expected failure under 10 fuel");
    Alcotest.test_case "faults do not leak into later solves" `Quick (fun () ->
        let p = fig45 () in
        (try
           ignore
             (Faults.with_fault Faults.Lp_infeasible (fun () ->
                  Engine.solve ~policy:[ Policy.Bicriteria ] p ~budget:2))
         with _ -> ());
        let s = check_ok "clean" (Engine.solve ~policy:[ Policy.Bicriteria ] p ~budget:2) in
        Alcotest.(check bool) "not degraded" false (Engine.degraded_to s));
  ]

(* ------------------------------------------------------------------ *)
(* (c) certificate validation                                          *)

let validation_units =
  [
    Alcotest.test_case "genuine exact certificate validates" `Quick (fun () ->
        let p = fig45 () in
        let r = Exact.min_makespan p ~budget:2 in
        let claim = plain_claim Policy.Exact r.Exact.allocation r.Exact.makespan r.Exact.budget_used 2 in
        match Validate.check p claim with
        | Ok () -> ()
        | Error e -> Alcotest.failf "rejected a genuine certificate: %s" (Error.to_string e));
    Alcotest.test_case "corrupting one vertex by -1 is a Certificate_mismatch" `Quick (fun () ->
        let p = fig45 () in
        let r = Exact.min_makespan p ~budget:2 in
        (* vertex 3 is c, the fan-in hub holding both units *)
        Alcotest.(check int) "c gets both units" 2 r.Exact.allocation.(3);
        let claim =
          plain_claim Policy.Exact
            (Validate.corrupt r.Exact.allocation ~vertex:3 ~delta:(-1))
            r.Exact.makespan r.Exact.budget_used 2
        in
        (match Validate.check p claim with
        | Error (Error.Certificate_mismatch _) -> ()
        | Error e -> Alcotest.failf "wrong error class %s" (Error.class_name e)
        | Ok () -> Alcotest.fail "validator accepted a corrupted allocation"));
    Alcotest.test_case "corrupting one vertex by +1 is a Certificate_mismatch" `Quick (fun () ->
        let p = fig45 () in
        let r = Exact.min_makespan p ~budget:2 in
        let claim =
          plain_claim Policy.Exact
            (Validate.corrupt r.Exact.allocation ~vertex:3 ~delta:1)
            r.Exact.makespan r.Exact.budget_used 2
        in
        (match Validate.check p claim with
        | Error (Error.Certificate_mismatch _) -> ()
        | Error e -> Alcotest.failf "wrong error class %s" (Error.class_name e)
        | Ok () -> Alcotest.fail "validator accepted a corrupted allocation"));
    Alcotest.test_case "randomized: validator flags exactly the real corruptions" `Quick (fun () ->
        let rng = rng_of 301 in
        for _ = 1 to 10 do
          let p = random_instance rng ~n:(6 + Random.State.int rng 3) Problem.Binary in
          let budget = 1 + Random.State.int rng 4 in
          let r = Exact.min_makespan p ~budget in
          for v = 0 to Problem.n_jobs p - 1 do
            List.iter
              (fun delta ->
                if r.Exact.allocation.(v) + delta >= 0 then begin
                  let corrupted = Validate.corrupt r.Exact.allocation ~vertex:v ~delta in
                  let really_changed =
                    Schedule.makespan p corrupted <> r.Exact.makespan
                    || Schedule.min_budget p corrupted <> r.Exact.budget_used
                  in
                  let claim =
                    plain_claim Policy.Exact corrupted r.Exact.makespan r.Exact.budget_used budget
                  in
                  match (Validate.check p claim, really_changed) with
                  | Error (Error.Certificate_mismatch _), true | Ok (), false -> ()
                  | Ok (), true -> Alcotest.fail "validator missed a corrupted certificate"
                  | Error e, false ->
                      Alcotest.failf "validator rejected an unchanged certificate: %s"
                        (Error.to_string e)
                  | Error e, true -> Alcotest.failf "wrong error class %s" (Error.class_name e)
                end)
              [ -1; 1 ]
          done
        done);
    Alcotest.test_case "claimed approximation bound is enforced" `Quick (fun () ->
        let p = fig45 () in
        let bi = Bicriteria.min_makespan p ~budget:2 ~alpha:Rat.half in
        let base =
          {
            Validate.rung = Policy.Bicriteria;
            allocation = bi.Bicriteria.rounded.Rounding.allocation;
            makespan = bi.Bicriteria.rounded.Rounding.makespan;
            budget_used = bi.Bicriteria.rounded.Rounding.budget_used;
            budget = 2;
            alpha = Some Rat.half;
            lp_makespan = Some bi.Bicriteria.lp.Lp_relax.makespan;
            lp_budget = Some bi.Bicriteria.lp.Lp_relax.budget_used;
          }
        in
        (match Validate.check p base with
        | Ok () -> ()
        | Error e -> Alcotest.failf "rejected a genuine bicriteria claim: %s" (Error.to_string e));
        (* shrink the claimed LP bound until the 1/alpha factor is violated *)
        let tiny = Rat.of_ints 1 100 in
        let forged = { base with Validate.lp_makespan = Some tiny } in
        match Validate.check p forged with
        | Error (Error.Certificate_mismatch { what = "approximation bound"; _ }) -> ()
        | Error e -> Alcotest.failf "wrong error class %s" (Error.class_name e)
        | Ok () -> Alcotest.fail "validator accepted a forged LP bound");
    Alcotest.test_case "wrong-length allocation is a Certificate_mismatch" `Quick (fun () ->
        let p = fig45 () in
        let claim = plain_claim Policy.Baseline [| 0 |] 11 0 0 in
        match Validate.check p claim with
        | Error (Error.Certificate_mismatch _) -> ()
        | _ -> Alcotest.fail "expected a mismatch");
  ]

(* ------------------------------------------------------------------ *)
(* structured errors at the boundary                                   *)

let boundary_units =
  [
    Alcotest.test_case "parse errors carry line numbers through the engine" `Quick (fun () ->
        (match Engine.load_string "vertices 2\nduration 0 nope" with
        | Error (Error.Parse_error { line = 2; _ }) -> ()
        | Error e -> Alcotest.failf "wrong error %s" (Error.to_string e)
        | Ok _ -> Alcotest.fail "accepted malformed input");
        match Engine.load "/nonexistent/instance.rtt" with
        | Error (Error.Io_error _) -> ()
        | Error e -> Alcotest.failf "wrong error %s" (Error.to_string e)
        | Ok _ -> Alcotest.fail "loaded a nonexistent file");
    Alcotest.test_case "invalid requests are rejected, not raised" `Quick (fun () ->
        let p = fig45 () in
        (match Engine.solve p ~budget:(-1) with
        | Error (Error.Invalid_request _) -> ()
        | _ -> Alcotest.fail "negative budget accepted");
        (match Engine.solve ~alpha:Rat.two p ~budget:2 with
        | Error (Error.Invalid_request _) -> ()
        | _ -> Alcotest.fail "alpha = 2 accepted");
        match Engine.solve ~policy:[] p ~budget:2 with
        | Error (Error.Invalid_request _) -> ()
        | _ -> Alcotest.fail "empty policy accepted");
    Alcotest.test_case "exit codes are stable and distinct per class" `Quick (fun () ->
        let samples =
          [
            Error.Parse_error { line = 1; msg = "" };
            Error.Io_error "";
            Error.Invalid_instance "";
            Error.Invalid_request "";
            Error.Too_large { states = 0 };
            Error.Fuel_exhausted { stage = ""; spent = 0 };
            Error.Lp_failure "";
            Error.Flow_failure "";
            Error.Fault_injected { site = "" };
            Error.Certificate_mismatch { what = ""; expected = ""; got = "" };
            Error.All_rungs_failed [];
            Error.Internal "";
          ]
        in
        let codes = List.map Error.exit_code samples in
        Alcotest.(check bool) "all nonzero" true (List.for_all (fun c -> c > 1) codes);
        Alcotest.(check int) "distinct" (List.length codes)
          (List.length (List.sort_uniq compare codes)));
    Alcotest.test_case "policy round-trips through of_string" `Quick (fun () ->
        (match Policy.of_string (Policy.to_string Policy.default) with
        | Ok p -> Alcotest.(check string) "round trip" (Policy.to_string Policy.default)
                    (Policy.to_string p)
        | Error m -> Alcotest.failf "rejected default policy: %s" m);
        (match Policy.of_string "exact, greedy" with
        | Ok [ Policy.Exact; Policy.Greedy ] -> ()
        | _ -> Alcotest.fail "spaces around commas should be accepted");
        match Policy.of_string "exact,nope" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "unknown rung accepted");
    Alcotest.test_case "too-large exact instances fail structurally" `Quick (fun () ->
        (* fig45's hub vertex has two duration options at budget 2, so
           the state space strictly exceeds a cap of one state *)
        let p = fig45 () in
        match Engine.solve ~max_states:1 ~policy:[ Policy.Exact ] p ~budget:2 with
        | Error (Error.Too_large { states }) -> Alcotest.(check bool) "states" true (states > 1)
        | Error e -> Alcotest.failf "wrong error %s" (Error.class_name e)
        | Ok _ -> Alcotest.fail "expected Too_large");
  ]

(* ------------------------------------------------------------------ *)
(* (e) content addressing: the fingerprint digest and the result cache *)

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let dir_counter = ref 0

let fresh_dir tag =
  incr dir_counter;
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rtt-%s-%d-%d" tag (Unix.getpid ()) !dir_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

(* keep the [vertices] header first (the parser needs the count before
   any directive that references a vertex), shuffle everything else *)
let shuffle_instance_text rng text =
  match List.filter (fun l -> l <> "") (String.split_on_char '\n' text) with
  | [] -> text
  | header :: rest ->
      let tagged = List.map (fun l -> (Random.State.bits rng, l)) rest in
      let shuffled = List.map snd (List.sort compare tagged) in
      String.concat "\n" (header :: shuffled) ^ "\n"

let third = Rat.make Bigint.one (Bigint.of_int 3)

let fingerprint_units =
  [
    prop "digest: declaration order is irrelevant" 60
      QCheck.(pair (int_range 0 10_000) (int_range 0 10_000))
      (fun (iseed, sseed) ->
        let p = random_instance (rng_of iseed) ~n:8 Problem.Binary in
        let text = Io.to_string p in
        let p2 = Io.of_string (shuffle_instance_text (rng_of sseed) text) in
        Fingerprint.digest p ~budget:3 = Fingerprint.digest p2 ~budget:3);
    prop "digest: budget, alpha, and policy are all part of the key" 40
      QCheck.(int_range 0 10_000)
      (fun seed ->
        let p = random_instance (rng_of seed) ~n:7 Problem.Binary in
        let base = Fingerprint.digest p ~budget:3 in
        base <> Fingerprint.digest p ~budget:4
        && base <> Fingerprint.digest ~alpha:third p ~budget:3
        && base <> Fingerprint.digest ~policy:[ Policy.Greedy ] p ~budget:3);
    Alcotest.test_case "digest: the file name is not part of the key" `Quick (fun () ->
        let p = fig45 () in
        let dir = fresh_dir "name" in
        let write name =
          Io.write_file (Filename.concat dir name) p;
          match Engine.load (Filename.concat dir name) with
          | Ok p -> Fingerprint.digest p ~budget:2
          | Error e -> Alcotest.failf "load: %s" (Error.to_string e)
        in
        Alcotest.(check string) "same digest" (write "alpha.rtt") (write "renamed_copy.rtt"));
    Alcotest.test_case "digest: one duration point moves it" `Quick (fun () ->
        let p = fig45 () in
        let bump v' d =
          match Rtt_duration.Duration.tuples d with
          | (0, t0) :: rest when v' = 3 -> Rtt_duration.Duration.make ((0, t0 + 1) :: rest)
          | _ -> d
        in
        let p2 = Problem.make p.Problem.dag ~durations:(fun v -> bump v (Problem.duration p v)) in
        Alcotest.(check bool)
          "digests differ" true
          (Fingerprint.digest p ~budget:2 <> Fingerprint.digest p2 ~budget:2));
    Alcotest.test_case "digest: one edge moves it" `Quick (fun () ->
        let p = fig45 () in
        let text = Io.to_string p in
        let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' text) in
        let edges, others =
          List.partition (fun l -> String.length l > 5 && String.sub l 0 5 = "edge ") lines
        in
        let dropped =
          match edges with
          | [] -> Alcotest.fail "no edges in fig45"
          | _ :: rest -> others @ rest
        in
        let p2 = Io.of_string (String.concat "\n" dropped ^ "\n") in
        Alcotest.(check bool)
          "digests differ" true
          (Fingerprint.digest p ~budget:2 <> Fingerprint.digest p2 ~budget:2));
  ]

let roundtrip_claim (s : Engine.success) ~budget : Validate.claim =
  {
    Validate.rung = s.Engine.rung;
    allocation = s.Engine.allocation;
    makespan = s.Engine.makespan;
    budget_used = s.Engine.budget_used;
    budget;
    alpha = (if s.Engine.rung = Policy.Bicriteria then Some Rat.half else None);
    lp_makespan = s.Engine.lp_makespan;
    lp_budget = s.Engine.lp_budget;
  }

let cache_units =
  [
    Alcotest.test_case "round-trip: a stored solve reads back validate-clean" `Quick (fun () ->
        let p = fig45 () in
        let dir = fresh_dir "cache" in
        let s = check_ok "solve" (Engine.solve p ~budget:2) in
        let key = Fingerprint.digest p ~budget:2 in
        Cache.store ~dir ~key s;
        Alcotest.(check int) "one entry" 1 (Cache.entries ~dir);
        match Cache.lookup ~dir ~key with
        | None -> Alcotest.fail "expected a hit"
        | Some c ->
            Alcotest.(check int) "makespan" s.Engine.makespan c.Engine.makespan;
            Alcotest.(check int) "budget_used" s.Engine.budget_used c.Engine.budget_used;
            Alcotest.(check (array int)) "allocation" s.Engine.allocation c.Engine.allocation;
            Alcotest.(check int) "no fuel charged" 0 c.Engine.fuel_spent;
            (match Validate.check p (roundtrip_claim c ~budget:2) with
            | Ok () -> ()
            | Error e -> Alcotest.failf "re-validation rejected the hit: %s" (Error.to_string e)));
    Alcotest.test_case "round-trip: a bicriteria result keeps its LP evidence" `Quick (fun () ->
        let p = fig45 () in
        let dir = fresh_dir "cache-bi" in
        let s = check_ok "solve" (Engine.solve ~policy:[ Policy.Bicriteria ] p ~budget:2) in
        let key = Fingerprint.digest ~policy:[ Policy.Bicriteria ] p ~budget:2 in
        Cache.store ~dir ~key s;
        match Cache.lookup ~dir ~key with
        | None -> Alcotest.fail "expected a hit"
        | Some c ->
            Alcotest.(check bool) "lp_makespan kept" true (c.Engine.lp_makespan = s.Engine.lp_makespan);
            (match Validate.check p (roundtrip_claim c ~budget:2) with
            | Ok () -> ()
            | Error e -> Alcotest.failf "re-validation rejected the hit: %s" (Error.to_string e)));
    Alcotest.test_case "a corrupted entry is a miss, not a wrong answer" `Quick (fun () ->
        let p = fig45 () in
        let dir = fresh_dir "cache-corrupt" in
        let s = check_ok "solve" (Engine.solve p ~budget:2) in
        let key = Fingerprint.digest p ~budget:2 in
        Cache.store ~dir ~key s;
        let path = Cache.path ~dir ~key in
        let ic = open_in_bin path in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let flip i =
          let b = Bytes.of_string text in
          Bytes.set b i (if Bytes.get b i = '0' then '1' else '0');
          let oc = open_out_bin path in
          output_bytes oc b;
          close_out oc
        in
        (* corrupt the payload: checksum mismatch *)
        flip (String.length text - 1);
        Alcotest.(check bool) "payload corruption -> miss" true (Cache.lookup ~dir ~key = None);
        (* truncate: no room for a checksum *)
        let oc = open_out_bin path in
        output_string oc (String.sub text 0 10);
        close_out oc;
        Alcotest.(check bool) "truncated -> miss" true (Cache.lookup ~dir ~key = None);
        Alcotest.(check bool) "absent key -> miss" true
          (Cache.lookup ~dir ~key:(String.make 32 'f') = None);
        Alcotest.(check int) "missing dir counts zero" 0
          (Cache.entries ~dir:(Filename.concat dir "nowhere")));
    prop "round-trip: arbitrary successes survive store/lookup" 40
      QCheck.(
        quad (int_range 0 1000) (int_range 0 50)
          (small_list (int_range 0 9))
          (pair bool (int_range 1 50)))
      (fun (makespan, budget_used, alloc, (with_lp, lp_num)) ->
        let dir = fresh_dir "cache-prop" in
        let s =
          {
            Engine.rung = Policy.Exact;
            allocation = Array.of_list alloc;
            makespan;
            budget_used;
            lp_makespan = (if with_lp then Some (Rat.make (Bigint.of_int lp_num) (Bigint.of_int 7)) else None);
            lp_budget = None;
            degraded = [];
            fuel_spent = 12345;
          }
        in
        let key = String.make 32 'a' in
        Cache.store ~dir ~key s;
        match Cache.lookup ~dir ~key with
        | None -> false
        | Some c ->
            c.Engine.makespan = makespan && c.Engine.budget_used = budget_used
            && c.Engine.allocation = Array.of_list alloc
            && c.Engine.lp_makespan = s.Engine.lp_makespan
            && c.Engine.fuel_spent = 0);
  ]

let () =
  Alcotest.run "engine"
    [
      ("agreement", agreement_units);
      ("fallback", fallback_units);
      ("validation", validation_units);
      ("boundary", boundary_units);
      ("fingerprint", fingerprint_units);
      ("cache", cache_units);
    ]
