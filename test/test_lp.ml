(* Tests for the exact rational simplex and the LP model builder.
   Optima are checked against hand-solved instances and against a
   brute-force vertex enumeration on random small LPs. *)

open Rtt_num
open Rtt_lp

let q = Rat.of_ints
let qi = Rat.of_int

let expr _lp terms = Linexpr.of_terms (List.map (fun (c, v) -> (c, Lp.var_index v)) terms)
let cst _lp k = Linexpr.const (qi k)

let check_rat name expected actual =
  Alcotest.(check string) name (Rat.to_string expected) (Rat.to_string actual)

let linexpr_units =
  [
    Alcotest.test_case "construction and eval" `Quick (fun () ->
        let e = Linexpr.of_terms ~const:(qi 3) [ (qi 2, 0); (qi (-1), 1) ] in
        check_rat "coeff0" (qi 2) (Linexpr.coeff e 0);
        check_rat "coeff1" (qi (-1)) (Linexpr.coeff e 1);
        check_rat "missing" Rat.zero (Linexpr.coeff e 7);
        check_rat "eval" (qi 3) (Linexpr.eval e (fun v -> qi (v + 1))));
    Alcotest.test_case "zero coefficients vanish" `Quick (fun () ->
        let e = Linexpr.add (Linexpr.term (qi 2) 0) (Linexpr.term (qi (-2)) 0) in
        Alcotest.(check int) "terms" 0 (List.length (Linexpr.terms e));
        Alcotest.(check int) "max_var" (-1) (Linexpr.max_var e));
    Alcotest.test_case "scale and sub" `Quick (fun () ->
        let e = Linexpr.sub (Linexpr.scale (qi 3) (Linexpr.var 0)) (Linexpr.var 0) in
        check_rat "coeff" (qi 2) (Linexpr.coeff e 0));
  ]

let simplex_units =
  [
    Alcotest.test_case "textbook maximize" `Quick (fun () ->
        (* max 3x + 5y st x <= 4; 2y <= 12; 3x + 2y <= 18 -> 36 at (2,6) *)
        let lp = Lp.create () in
        let x = Lp.var lp "x" and y = Lp.var lp "y" in
        Lp.add_le lp (expr lp [ (qi 1, x) ]) (cst lp 4);
        Lp.add_le lp (expr lp [ (qi 2, y) ]) (cst lp 12);
        Lp.add_le lp (expr lp [ (qi 3, x); (qi 2, y) ]) (cst lp 18);
        match Lp.maximize lp (expr lp [ (qi 3, x); (qi 5, y) ]) with
        | Lp.Optimal s ->
            check_rat "objective" (qi 36) s.Lp.objective;
            check_rat "x" (qi 2) (s.Lp.value x);
            check_rat "y" (qi 6) (s.Lp.value y)
        | _ -> Alcotest.fail "expected optimal");
    Alcotest.test_case "fractional optimum stays exact" `Quick (fun () ->
        (* min x + y st x + 2y = 3; 3x + y >= 2 -> 8/5 at (1/5, 7/5) *)
        let lp = Lp.create () in
        let x = Lp.var lp "x" and y = Lp.var lp "y" in
        Lp.add_eq lp (expr lp [ (qi 1, x); (qi 2, y) ]) (cst lp 3);
        Lp.add_ge lp (expr lp [ (qi 3, x); (qi 1, y) ]) (cst lp 2);
        match Lp.minimize lp (expr lp [ (qi 1, x); (qi 1, y) ]) with
        | Lp.Optimal s ->
            check_rat "objective" (q 8 5) s.Lp.objective;
            check_rat "x" (q 1 5) (s.Lp.value x);
            check_rat "y" (q 7 5) (s.Lp.value y)
        | _ -> Alcotest.fail "expected optimal");
    Alcotest.test_case "infeasible detected" `Quick (fun () ->
        let lp = Lp.create () in
        let x = Lp.var lp "x" in
        Lp.add_ge lp (expr lp [ (qi 1, x) ]) (cst lp 5);
        Lp.add_le lp (expr lp [ (qi 1, x) ]) (cst lp 3);
        Alcotest.(check bool) "infeasible" true (Lp.minimize lp (expr lp [ (qi 1, x) ]) = Lp.Infeasible));
    Alcotest.test_case "unbounded detected" `Quick (fun () ->
        let lp = Lp.create () in
        let x = Lp.var lp "x" in
        Lp.add_ge lp (expr lp [ (qi 1, x) ]) (cst lp 1);
        Alcotest.(check bool) "unbounded" true (Lp.maximize lp (expr lp [ (qi 1, x) ]) = Lp.Unbounded));
    Alcotest.test_case "degenerate (Bland terminates)" `Quick (fun () ->
        (* classic cycling example of Beale; Bland's rule must terminate *)
        let lp = Lp.create () in
        let x1 = Lp.var lp "x1" and x2 = Lp.var lp "x2" and x3 = Lp.var lp "x3" and x4 = Lp.var lp "x4" in
        Lp.add_le lp (expr lp [ (q 1 4, x1); (qi (-60), x2); (q (-1) 25, x3); (qi 9, x4) ]) (cst lp 0);
        Lp.add_le lp (expr lp [ (q 1 2, x1); (qi (-90), x2); (q (-1) 50, x3); (qi 3, x4) ]) (cst lp 0);
        Lp.add_le lp (expr lp [ (qi 1, x3) ]) (cst lp 1);
        match Lp.maximize lp (expr lp [ (q 3 4, x1); (qi (-150), x2); (q 1 50, x3); (qi (-6), x4) ]) with
        | Lp.Optimal s -> check_rat "objective" (q 1 20) s.Lp.objective
        | _ -> Alcotest.fail "expected optimal");
    Alcotest.test_case "equality-only system" `Quick (fun () ->
        let lp = Lp.create () in
        let x = Lp.var lp "x" and y = Lp.var lp "y" in
        Lp.add_eq lp (expr lp [ (qi 1, x); (qi 1, y) ]) (cst lp 10);
        Lp.add_eq lp (expr lp [ (qi 1, x); (qi (-1), y) ]) (cst lp 4);
        match Lp.minimize lp (expr lp [ (qi 1, x) ]) with
        | Lp.Optimal s ->
            check_rat "x" (qi 7) (s.Lp.value x);
            check_rat "y" (qi 3) (s.Lp.value y)
        | _ -> Alcotest.fail "expected optimal");
    Alcotest.test_case "negative rhs normalized" `Quick (fun () ->
        (* -x <= -2  <=>  x >= 2 *)
        let lp = Lp.create () in
        let x = Lp.var lp "x" in
        Lp.add_le lp (expr lp [ (qi (-1), x) ]) (cst lp (-2));
        match Lp.minimize lp (expr lp [ (qi 1, x) ]) with
        | Lp.Optimal s -> check_rat "x" (qi 2) (s.Lp.value x)
        | _ -> Alcotest.fail "expected optimal");
    Alcotest.test_case "constants folded across sides" `Quick (fun () ->
        (* x + 1 <= y + 3 with y <= 1: max x = 3 *)
        let lp = Lp.create () in
        let x = Lp.var lp "x" and y = Lp.var lp "y" in
        Lp.add_le lp
          (Linexpr.add (expr lp [ (qi 1, x) ]) (Linexpr.const (qi 1)))
          (Linexpr.add (expr lp [ (qi 1, y) ]) (Linexpr.const (qi 3)));
        Lp.add_le lp (expr lp [ (qi 1, y) ]) (cst lp 1);
        match Lp.maximize lp (expr lp [ (qi 1, x) ]) with
        | Lp.Optimal s -> check_rat "x" (qi 3) (s.Lp.value x)
        | _ -> Alcotest.fail "expected optimal");
    Alcotest.test_case "redundant constraints harmless" `Quick (fun () ->
        let lp = Lp.create () in
        let x = Lp.var lp "x" in
        Lp.add_le lp (expr lp [ (qi 1, x) ]) (cst lp 5);
        Lp.add_le lp (expr lp [ (qi 1, x) ]) (cst lp 5);
        Lp.add_le lp (expr lp [ (qi 2, x) ]) (cst lp 10);
        match Lp.maximize lp (expr lp [ (qi 1, x) ]) with
        | Lp.Optimal s -> check_rat "x" (qi 5) (s.Lp.value x)
        | _ -> Alcotest.fail "expected optimal");
  ]

(* Brute-force reference: for LPs with n variables and only <= rows plus
   x >= 0, enumerate all basic points (intersections of n constraint
   hyperplanes chosen among rows and axes) and take the best feasible
   one. To stay simple we check 2-variable LPs geometrically. *)
let brute_force_2d rows obj_x obj_y =
  (* rows: (a, b, c) meaning a x + b y <= c; axes x >= 0, y >= 0 *)
  let lines = rows @ [ (Rat.one, Rat.zero, Rat.zero); (Rat.zero, Rat.one, Rat.zero) ] in
  let feasible (x, y) =
    Rat.(x >= Rat.zero)
    && Rat.(y >= Rat.zero)
    && List.for_all (fun (a, b, c) -> Rat.(add (mul a x) (mul b y) <= c)) rows
  in
  let candidates = ref [] in
  let push p = if feasible p then candidates := p :: !candidates in
  push (Rat.zero, Rat.zero);
  List.iteri
    (fun i (a1, b1, c1) ->
      List.iteri
        (fun j (a2, b2, c2) ->
          if i < j then begin
            let det = Rat.(sub (mul a1 b2) (mul a2 b1)) in
            if not (Rat.is_zero det) then begin
              let x = Rat.(div (sub (mul c1 b2) (mul c2 b1)) det) in
              let y = Rat.(div (sub (mul a1 c2) (mul a2 c1)) det) in
              push (x, y)
            end
          end)
        lines)
    lines;
  match !candidates with
  | [] -> None
  | l ->
      Some
        (List.fold_left
           (fun acc (x, y) -> Rat.max acc Rat.(add (mul obj_x x) (mul obj_y y)))
           (Rat.of_int min_int) (* fine: dominated immediately *)
           l)

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let simplex_props =
  [
    prop "2d simplex matches vertex enumeration" 100 QCheck.(pair (int_range 1 6) (int_range 0 1000))
      (fun (rows, seed) ->
        let rng = Random.State.make [| seed; rows |] in
        let ri lo hi = Rat.of_int (lo + Random.State.int rng (hi - lo + 1)) in
        let constraints = List.init rows (fun _ -> (ri (-3) 5, ri (-3) 5, ri 0 10)) in
        let ox = ri 1 5 and oy = ri 1 5 in
        let lp = Lp.create () in
        let x = Lp.var lp "x" and y = Lp.var lp "y" in
        List.iter
          (fun (a, b, c) ->
            Lp.add_le lp (Linexpr.of_terms [ (a, Lp.var_index x); (b, Lp.var_index y) ]) (Linexpr.const c))
          constraints;
        let obj = Linexpr.of_terms [ (ox, Lp.var_index x); (oy, Lp.var_index y) ] in
        match Lp.maximize lp obj with
        | Lp.Infeasible -> false (* origin is always feasible here since rhs >= 0 *)
        | Lp.Unbounded -> brute_force_2d constraints ox oy = None || true
        (* unboundedness cannot be detected by vertex enumeration; accept *)
        | Lp.Optimal s -> (
            match brute_force_2d constraints ox oy with
            | Some best -> Rat.equal s.Lp.objective best
            | None -> false));
    prop "optimal solutions satisfy all constraints" 100 QCheck.(int_range 0 1000) (fun seed ->
        let rng = Random.State.make [| seed; 42 |] in
        let nv = 2 + Random.State.int rng 3 in
        let rows = 2 + Random.State.int rng 4 in
        let lp = Lp.create () in
        let vars = Array.init nv (fun i -> Lp.var lp (Printf.sprintf "v%d" i)) in
        let cons = ref [] in
        for _ = 1 to rows do
          let coeffs = Array.map (fun v -> (Rat.of_int (Random.State.int rng 7 - 2), v)) vars in
          let rhs = Rat.of_int (Random.State.int rng 12) in
          let e = Linexpr.of_terms (Array.to_list (Array.map (fun (c, v) -> (c, Lp.var_index v)) coeffs)) in
          Lp.add_le lp e (Linexpr.const rhs);
          cons := (e, rhs) :: !cons
        done;
        let obj =
          Linexpr.of_terms (Array.to_list (Array.map (fun v -> (Rat.of_int (1 + Random.State.int rng 4), Lp.var_index v)) vars))
        in
        match Lp.maximize lp obj with
        | Lp.Optimal s ->
            List.for_all (fun (e, rhs) -> Rat.(s.Lp.expr_value e <= rhs)) !cons
            && Array.for_all (fun v -> Rat.(s.Lp.value v >= Rat.zero)) vars
        | Lp.Unbounded -> true
        | Lp.Infeasible -> false);
  ]

(* ------------------------------------------------------------------ *)
(* Pricing rules and the float warm start. Dantzig and Bland may stop
   at different optimal vertices on degenerate instances, so agreement
   is asserted on status and objective value, never on the solution
   vector; the same goes for warm start on/off. *)

let with_pricing p f =
  let saved = !Simplex.pricing in
  Simplex.pricing := p;
  Fun.protect ~finally:(fun () -> Simplex.pricing := saved) f

let with_warmstart b f =
  let saved = !Simplex.warmstart_enabled in
  Simplex.warmstart_enabled := b;
  Fun.protect ~finally:(fun () -> Simplex.warmstart_enabled := saved) f

let outcome_key = function
  | Simplex.Optimal { objective; _ } -> "optimal " ^ Rat.to_string objective
  | Simplex.Infeasible -> "infeasible"
  | Simplex.Unbounded -> "unbounded"

(* random standard-form instance mixing <=, >= and = rows so phase 1,
   infeasibility and unboundedness all occur with decent frequency *)
let random_instance seed =
  let rng = Random.State.make [| seed; 7177 |] in
  let nv = 1 + Random.State.int rng 4 in
  let rows = 1 + Random.State.int rng 5 in
  let rel () =
    match Random.State.int rng 4 with 0 -> Simplex.Ge | 1 -> Simplex.Eq | _ -> Simplex.Le
  in
  let constrs =
    List.init rows (fun _ ->
        {
          Simplex.coeffs = Array.init nv (fun _ -> Rat.of_int (Random.State.int rng 9 - 3));
          relation = rel ();
          rhs = Rat.of_int (Random.State.int rng 15 - 4);
        })
  in
  let objective = Array.init nv (fun _ -> Rat.of_int (Random.State.int rng 11 - 5)) in
  (nv, constrs, objective)

let pricing_props =
  [
    prop "Dantzig and Bland agree on status and objective" 300 QCheck.(int_range 0 100_000)
      (fun seed ->
        let n_vars, constrs, objective = random_instance seed in
        with_warmstart false (fun () ->
            let b = with_pricing Simplex.Bland (fun () -> Simplex.minimize ~n_vars constrs ~objective) in
            let d = with_pricing Simplex.Dantzig (fun () -> Simplex.minimize ~n_vars constrs ~objective) in
            String.equal (outcome_key b) (outcome_key d)));
    prop "float warm start never changes status or objective" 300 QCheck.(int_range 0 100_000)
      (fun seed ->
        let n_vars, constrs, objective = random_instance seed in
        with_pricing Simplex.Bland (fun () ->
            let cold = with_warmstart false (fun () -> Simplex.minimize ~n_vars constrs ~objective) in
            let warm = with_warmstart true (fun () -> Simplex.minimize ~n_vars constrs ~objective) in
            String.equal (outcome_key cold) (outcome_key warm)));
  ]

(* max 3x + 5y st x <= 4; 2y <= 12; 3x + 2y <= 18 -> 36 at (2,6) *)
let textbook () =
  let row coeffs relation rhs =
    { Simplex.coeffs = Array.map Rat.of_int coeffs; relation; rhs = Rat.of_int rhs }
  in
  let constrs =
    [ row [| 1; 0 |] Simplex.Le 4; row [| 0; 2 |] Simplex.Le 12; row [| 3; 2 |] Simplex.Le 18 ]
  in
  (2, constrs, [| Rat.of_int 3; Rat.of_int 5 |])

let warmstart_units =
  [
    Alcotest.test_case "accepted warm start is counted and exact" `Quick (fun () ->
        let n_vars, constrs, objective = textbook () in
        let acc0, rej0 = Simplex.warm_stats () in
        let out =
          with_warmstart true (fun () -> Simplex.maximize ~n_vars constrs ~objective)
        in
        let acc1, rej1 = Simplex.warm_stats () in
        (match out with
        | Simplex.Optimal { objective; _ } ->
            Alcotest.(check string) "objective" "36" (Rat.to_string objective)
        | _ -> Alcotest.fail "expected optimal");
        Alcotest.(check int) "accepted" (acc0 + 1) acc1;
        Alcotest.(check int) "rejected" rej0 rej1);
    Alcotest.test_case "injected rejection falls back to two-phase" `Quick (fun () ->
        let n_vars, constrs, objective = textbook () in
        let acc0, rej0 = Simplex.warm_stats () in
        Rtt_budget.Budget.arm ~site:Simplex.warmstart_reject_site ~after:0;
        Fun.protect
          ~finally:(fun () -> Rtt_budget.Budget.disarm_all ())
          (fun () ->
            let out =
              with_warmstart true (fun () -> Simplex.maximize ~n_vars constrs ~objective)
            in
            let acc1, rej1 = Simplex.warm_stats () in
            (match out with
            | Simplex.Optimal { objective; solution } ->
                Alcotest.(check string) "objective" "36" (Rat.to_string objective);
                Alcotest.(check string) "x" "2" (Rat.to_string solution.(0));
                Alcotest.(check string) "y" "6" (Rat.to_string solution.(1))
            | _ -> Alcotest.fail "expected optimal");
            Alcotest.(check int) "rejected" (rej0 + 1) rej1;
            Alcotest.(check int) "accepted" acc0 acc1;
            Alcotest.(check bool) "fault disarmed" false
              (Rtt_budget.Budget.armed ~site:Simplex.warmstart_reject_site)));
    Alcotest.test_case "disabled warm start counts in neither bucket" `Quick (fun () ->
        let n_vars, constrs, objective = textbook () in
        let acc0, rej0 = Simplex.warm_stats () in
        let out =
          with_warmstart false (fun () -> Simplex.maximize ~n_vars constrs ~objective)
        in
        let acc1, rej1 = Simplex.warm_stats () in
        (match out with
        | Simplex.Optimal { objective; _ } ->
            Alcotest.(check string) "objective" "36" (Rat.to_string objective)
        | _ -> Alcotest.fail "expected optimal");
        Alcotest.(check int) "accepted" acc0 acc1;
        Alcotest.(check int) "rejected" rej0 rej1);
  ]

(* ------------------------------------------------------------------ *)
(* Differential: the sparse revised engine against the dense tableau
   oracle. The contract is stronger than "same answer": same status,
   same objective, same solution vector, same captured basis, same
   pivot sequence (via the trace log), same pivot count, same fuel.
   Everything is folded into one fingerprint string so a mismatch
   prints both sides. *)

let with_engine e f =
  let saved = !Simplex.engine in
  Simplex.engine := e;
  Fun.protect ~finally:(fun () -> Simplex.engine := saved) f

let fingerprint_run solve =
  Simplex.trace_pivots := true;
  ignore (Simplex.take_pivot_log ());
  let p0 = Simplex.pivot_count () in
  let acc0, rej0 = Simplex.warm_stats () in
  let out = Rtt_budget.Budget.with_fuel (Some 200_000) (fun () ->
      let out = solve () in
      (out, Rtt_budget.Budget.spent ()))
  in
  let out, fuel = out in
  let log = Simplex.take_pivot_log () in
  Simplex.trace_pivots := false;
  let acc1, rej1 = Simplex.warm_stats () in
  let buf = Buffer.create 256 in
  (match out with
  | Simplex.Optimal { objective; solution } ->
      Buffer.add_string buf ("optimal " ^ Rat.to_string objective ^ " [");
      Array.iter (fun v -> Buffer.add_string buf (Rat.to_string v ^ ";")) solution;
      Buffer.add_string buf "] basis=";
      Buffer.add_string buf
        (match Simplex.last_basis () with Some b -> Simplex.basis_repr b | None -> "none")
  | Simplex.Infeasible -> Buffer.add_string buf "infeasible"
  | Simplex.Unbounded -> Buffer.add_string buf "unbounded");
  Buffer.add_string buf
    (Printf.sprintf " pivots=%d fuel=%d warm=+%d/+%d log="
       (Simplex.pivot_count () - p0) fuel (acc1 - acc0) (rej1 - rej0));
  List.iter (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "(%d,%d)" a b)) log;
  Buffer.contents buf

let check_engines_agree solve =
  let d = with_engine Simplex.Dense (fun () -> fingerprint_run solve) in
  let s = with_engine Simplex.Sparse (fun () -> fingerprint_run solve) in
  if not (String.equal d s) then
    Alcotest.fail (Printf.sprintf "engines diverge:\n--- dense\n%s\n--- sparse\n%s" d s);
  true

let with_eta_limit n f =
  let saved = !Rtt_lp.Basis_factor.eta_limit in
  Rtt_lp.Basis_factor.eta_limit := n;
  Fun.protect ~finally:(fun () -> Rtt_lp.Basis_factor.eta_limit := saved) f

(* same LP twice: first solve captures a basis, second consumes it as a
   hint — under each engine independently, then compared. [perturb]
   optionally bumps one rhs so the hint is same-shaped but stale. *)
let hint_fingerprint ~n_vars constrs ~objective ~perturb =
  let constrs2 =
    if not perturb then constrs
    else
      List.mapi
        (fun i c -> if i = 0 then { c with Simplex.rhs = Rat.add c.Simplex.rhs Rat.one } else c)
        constrs
  in
  let first = fingerprint_run (fun () -> Simplex.minimize ~n_vars constrs ~objective) in
  (* [last_basis] is process-global and survives a non-optimal solve,
     so a capture left behind by an earlier run (possibly under the
     other engine) would leak in here: only hint when THIS first solve
     was optimal and therefore overwrote the capture itself. *)
  if not (String.length first >= 7 && String.equal (String.sub first 0 7) "optimal") then first
  else
    match Simplex.last_basis () with
    | None -> first (* first solve was not optimal; nothing to hint with *)
    | Some b ->
      Simplex.set_basis_hint b;
      Fun.protect ~finally:Simplex.clear_basis_hint (fun () ->
          first ^ " || " ^ fingerprint_run (fun () -> Simplex.minimize ~n_vars:n_vars constrs2 ~objective))

let differential_props =
  [
    prop "engines agree bit for bit: cold two-phase (Bland)" 400 QCheck.(int_range 0 100_000)
      (fun seed ->
        let n_vars, constrs, objective = random_instance seed in
        with_warmstart false (fun () ->
            check_engines_agree (fun () -> Simplex.minimize ~n_vars constrs ~objective)));
    prop "engines agree bit for bit: float warm start (Bland)" 400 QCheck.(int_range 0 100_000)
      (fun seed ->
        let n_vars, constrs, objective = random_instance seed in
        with_warmstart true (fun () ->
            check_engines_agree (fun () -> Simplex.minimize ~n_vars constrs ~objective)));
    prop "engines agree bit for bit: Dantzig pricing" 200 QCheck.(int_range 0 100_000)
      (fun seed ->
        let n_vars, constrs, objective = random_instance seed in
        with_pricing Simplex.Dantzig (fun () ->
            check_engines_agree (fun () -> Simplex.minimize ~n_vars constrs ~objective)));
    prop "engines agree on the basis-hint path" 200 QCheck.(int_range 0 100_000)
      (fun seed ->
        let n_vars, constrs, objective = random_instance seed in
        with_warmstart true (fun () ->
            let d =
              with_engine Simplex.Dense (fun () ->
                  hint_fingerprint ~n_vars constrs ~objective ~perturb:false)
            in
            let s =
              with_engine Simplex.Sparse (fun () ->
                  hint_fingerprint ~n_vars constrs ~objective ~perturb:false)
            in
            if not (String.equal d s) then
              Alcotest.fail (Printf.sprintf "hint path diverges:\n--- dense\n%s\n--- sparse\n%s" d s);
            true));
    prop "engines agree on a stale (perturbed) basis hint" 200 QCheck.(int_range 0 100_000)
      (fun seed ->
        let n_vars, constrs, objective = random_instance seed in
        with_warmstart true (fun () ->
            let d =
              with_engine Simplex.Dense (fun () ->
                  hint_fingerprint ~n_vars constrs ~objective ~perturb:true)
            in
            let s =
              with_engine Simplex.Sparse (fun () ->
                  hint_fingerprint ~n_vars constrs ~objective ~perturb:true)
            in
            if not (String.equal d s) then
              Alcotest.fail
                (Printf.sprintf "stale-hint path diverges:\n--- dense\n%s\n--- sparse\n%s" d s);
            true));
    prop "forced refactorization changes nothing" 200 QCheck.(int_range 0 100_000)
      (fun seed ->
        let n_vars, constrs, objective = random_instance seed in
        with_engine Simplex.Sparse (fun () ->
            let lazy_refac =
              fingerprint_run (fun () -> Simplex.minimize ~n_vars constrs ~objective)
            in
            let eager =
              with_eta_limit 0 (fun () ->
                  fingerprint_run (fun () -> Simplex.minimize ~n_vars constrs ~objective))
            in
            if not (String.equal lazy_refac eager) then
              Alcotest.fail
                (Printf.sprintf "refactorization changed the solve:\n--- lazy\n%s\n--- eager\n%s"
                   lazy_refac eager);
            true));
  ]

let () =
  Alcotest.run "rtt_lp"
    [
      ("linexpr", linexpr_units);
      ("simplex", simplex_units);
      ("simplex-properties", simplex_props);
      ("pricing-properties", pricing_props);
      ("warm-start", warmstart_units);
      ("differential", differential_props);
    ]
