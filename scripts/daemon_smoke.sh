#!/usr/bin/env bash
# Daemon smoke test: start `rtt daemon`, throw 8 concurrent submissions
# at it (6 unique instances + 2 duplicates), wait for every waiter, and
# assert the spool journal shows exactly 6 jobs, all done.  The whole
# run is wrapped in a hard timeout by the caller (CI) or the default
# `timeout` below, so a wedged daemon is a failure, not a hang.
set -euo pipefail

RTT=${RTT:-_build/default/bin/rtt.exe}
WORK=$(mktemp -d)
SPOOL="$WORK/spool"
SOCKET="$WORK/d.sock"
mkdir -p "$SPOOL"

cleanup() {
  if [[ -n "${DAEMON_PID:-}" ]]; then
    kill -KILL "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

# six unique instances; submissions 7 and 8 duplicate the first two
for i in 1 2 3 4 5 6; do
  # n = 8*i gives each instance a distinct hub count — the hub
  # generator has few shapes per hub count, so nearby seeds collide
  "$RTT" gen -k hub -n "$((8 * i))" --seed "$((100 + i))" > "$WORK/in_$i.txt"
done
cp "$WORK/in_1.txt" "$WORK/in_7.txt"
cp "$WORK/in_2.txt" "$WORK/in_8.txt"

"$RTT" daemon --spool "$SPOOL" --socket "$SOCKET" -b 3 --workers 2 &
DAEMON_PID=$!

# wait for the socket to appear (daemon binds before accepting)
for _ in $(seq 1 100); do
  [[ -S "$SOCKET" ]] && break
  sleep 0.1
done
[[ -S "$SOCKET" ]] || { echo "FAIL: daemon never created its socket"; exit 1; }

# 8 concurrent waiters; every one must come back with a rendered result
PIDS=()
for i in 1 2 3 4 5 6 7 8; do
  "$RTT" submit "$WORK/in_$i.txt" --socket "$SOCKET" --wait --timeout 120 \
    > "$WORK/out_$i.txt" &
  PIDS+=("$!")
done
for pid in "${PIDS[@]}"; do
  wait "$pid" || { echo "FAIL: a waiter exited non-zero"; exit 1; }
done
for i in 1 2 3 4 5 6 7 8; do
  grep -q makespan "$WORK/out_$i.txt" \
    || { echo "FAIL: waiter $i got no rendering"; exit 1; }
done

# duplicates must have coalesced: exactly 6 unique jobs, all done
JOBS=$("$RTT" jobs "$SPOOL" --json)
TOTAL=$(printf '%s\n' "$JOBS" | grep -c '"id"' || true)
DONE=$(printf '%s\n' "$JOBS" | grep -c '"state":"done"' || true)
if [[ "$TOTAL" -ne 6 || "$DONE" -ne 6 ]]; then
  echo "FAIL: expected 6 unique done jobs, got total=$TOTAL done=$DONE"
  printf '%s\n' "$JOBS"
  exit 1
fi

# graceful shutdown: SIGTERM drains and exits 0, removing the socket
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || { echo "FAIL: drained daemon exited non-zero"; exit 1; }
DAEMON_PID=""
[[ -e "$SOCKET" ]] && { echo "FAIL: socket file left behind"; exit 1; }

echo "PASS: 8 submissions, 6 unique jobs done, duplicates coalesced, clean drain"
