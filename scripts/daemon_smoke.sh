#!/usr/bin/env bash
# Daemon smoke test, sharded: start `rtt daemon --shards 2`, throw 8
# concurrent single submissions at it (6 unique instances + 2
# duplicates), then a pipelined batch (`submit --many`) that re-submits
# all of them plus 2 fresh instances, wait for everything, and assert
# the union of the shard journals shows exactly 8 jobs, all done —
# duplicates coalesced fleet-wide even when the accepting shard is not
# the owner.  The whole run is wrapped in a hard timeout by the caller
# (CI) or the default `timeout` below, so a wedged daemon is a
# failure, not a hang.
set -euo pipefail

RTT=${RTT:-_build/default/bin/rtt.exe}
WORK=$(mktemp -d)
SPOOL="$WORK/spool"
SOCKET="$WORK/d.sock"
mkdir -p "$SPOOL"

cleanup() {
  if [[ -n "${DAEMON_PID:-}" ]]; then
    kill -KILL "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

# six unique instances; submissions 7 and 8 duplicate the first two
for i in 1 2 3 4 5 6; do
  # n = 8*i gives each instance a distinct hub count — the hub
  # generator has few shapes per hub count, so nearby seeds collide
  "$RTT" gen -k hub -n "$((8 * i))" --seed "$((100 + i))" > "$WORK/in_$i.txt"
done
cp "$WORK/in_1.txt" "$WORK/in_7.txt"
cp "$WORK/in_2.txt" "$WORK/in_8.txt"
# two fresh instances the batch alone submits
"$RTT" gen -k hub -n 56 --seed 107 > "$WORK/in_9.txt"
"$RTT" gen -k hub -n 64 --seed 108 > "$WORK/in_10.txt"

"$RTT" daemon --spool "$SPOOL" --socket "$SOCKET" --shards 2 -b 3 --workers 2 &
DAEMON_PID=$!

# wait for the socket to appear (daemon binds before accepting)
for _ in $(seq 1 100); do
  [[ -S "$SOCKET" ]] && break
  sleep 0.1
done
[[ -S "$SOCKET" ]] || { echo "FAIL: daemon never created its socket"; exit 1; }

# 8 concurrent waiters; every one must come back with a rendered result
# (half of these land on a shard that does not own the job and are
# relayed — the waiter cannot tell, which is the point)
PIDS=()
for i in 1 2 3 4 5 6 7 8; do
  "$RTT" submit "$WORK/in_$i.txt" --socket "$SOCKET" --wait --timeout 120 \
    > "$WORK/out_$i.txt" &
  PIDS+=("$!")
done
for pid in "${PIDS[@]}"; do
  wait "$pid" || { echo "FAIL: a waiter exited non-zero"; exit 1; }
done
for i in 1 2 3 4 5 6 7 8; do
  grep -q makespan "$WORK/out_$i.txt" \
    || { echo "FAIL: waiter $i got no rendering"; exit 1; }
done

# one pipelined batch: all ten instances in a single round trip, every
# already-solved one must coalesce (same id back), the two fresh ones
# must solve
printf '%s\n' "$WORK"/in_*.txt > "$WORK/manifest.txt"
"$RTT" submit --many "$WORK/manifest.txt" --socket "$SOCKET" --wait --timeout 120 \
  > "$WORK/batch.txt" \
  || { echo "FAIL: batch submit exited non-zero"; cat "$WORK/batch.txt"; exit 1; }
ACKS=$(grep -c '^/' "$WORK/batch.txt" || true)
DONES=$(grep -c ' done$' "$WORK/batch.txt" || true)
if [[ "$ACKS" -ne 10 || "$DONES" -ne 8 ]]; then
  echo "FAIL: batch expected 10 acks and 8 distinct done lines, got acks=$ACKS done=$DONES"
  cat "$WORK/batch.txt"
  exit 1
fi

# duplicates must have coalesced fleet-wide: exactly 8 unique jobs, all
# done, across the union of the shard journals — and both shards must
# actually own some of them (the fingerprint partition is not degenerate
# for this instance set)
JOBS=$("$RTT" jobs "$SPOOL" --json)
TOTAL=$(printf '%s\n' "$JOBS" | grep -c '"id"' || true)
DONE=$(printf '%s\n' "$JOBS" | grep -c '"state":"done"' || true)
if [[ "$TOTAL" -ne 8 || "$DONE" -ne 8 ]]; then
  echo "FAIL: expected 8 unique done jobs, got total=$TOTAL done=$DONE"
  printf '%s\n' "$JOBS"
  exit 1
fi
for shard in shard-0 shard-1; do
  [[ -s "$SPOOL/$shard/journal.log" ]] \
    || { echo "FAIL: $shard owns no jobs — partition degenerate"; exit 1; }
done

# session round trip over the sharded fleet: the sid-hashed owner may
# not be the shard that accepted the connection — the internal relay
# makes that invisible to the client. The second solve runs warm off
# the first answer and must render byte-identically to it
"$RTT" session open smoke1 --socket "$SOCKET" > /dev/null
"$RTT" session mutate smoke1 add-job 0:6 1:3 --socket "$SOCKET" > /dev/null
"$RTT" session mutate smoke1 add-job 0:4 2:1 --socket "$SOCKET" > /dev/null
"$RTT" session mutate smoke1 add-edge 0 1 --socket "$SOCKET" > /dev/null
REV=$("$RTT" session mutate smoke1 set-budget 3 --socket "$SOCKET")
[[ "$REV" == "smoke1 revision 4" ]] \
  || { echo "FAIL: expected 'smoke1 revision 4' after 4 mutations, got '$REV'"; exit 1; }
"$RTT" session solve smoke1 --socket "$SOCKET" > "$WORK/sess_cold.txt" 2>/dev/null
"$RTT" session solve smoke1 --socket "$SOCKET" > "$WORK/sess_warm.txt" 2> "$WORK/sess_warm.err"
cmp -s "$WORK/sess_cold.txt" "$WORK/sess_warm.txt" \
  || { echo "FAIL: warm session re-solve diverged from the cold solve"; exit 1; }
grep -q makespan "$WORK/sess_cold.txt" \
  || { echo "FAIL: session solve produced no rendering"; exit 1; }
grep -q '(warm)' "$WORK/sess_warm.err" \
  || { echo "FAIL: second session solve did not report a warm start"; exit 1; }
"$RTT" session close smoke1 --socket "$SOCKET" > /dev/null

# graceful shutdown: SIGTERM drains both shards and exits 0, removing
# the public socket and the internal shard sockets
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || { echo "FAIL: drained daemon exited non-zero"; exit 1; }
DAEMON_PID=""
[[ -e "$SOCKET" ]] && { echo "FAIL: socket file left behind"; exit 1; }
if compgen -G "$SOCKET.shard*" >/dev/null; then
  echo "FAIL: internal shard socket left behind"
  exit 1
fi

echo "PASS: 8 waiters + 10-entry pipelined batch over 2 shards, 8 unique jobs done, duplicates coalesced fleet-wide, session round trip warm==cold, clean drain"
