#!/usr/bin/env bash
# Latency-SLO gate for the serving front-end, driven by `rtt loadgen`.
#
#   loadgen_gate.sh            gate mode: compare fresh p99 against the
#                              committed BENCH_LOADGEN.json baseline
#   loadgen_gate.sh baseline   measure and (re)write BENCH_LOADGEN.json
#
# Gate mode boots a one-shard daemon on a scratch spool, runs the
# open-loop generator twice, and fails when the better of the two p99s
# regresses more than 25% past the committed baseline — with an
# absolute floor (RTT_LOADGEN_SLO_MS, default 50 ms) below which p99
# differences are timer noise, not regressions. Two fresh runs more
# than 30% apart mean the runner is too noisy to judge: the gate prints
# a `skipped:` line and exits 0 (same convention as bench_gate.sh).
#
# When the machine has at least 4 cores, both modes also measure a
# 4-shard daemon and check the scaling claim: sharded throughput at
# least 2x the one-shard figure. Below 4 cores the claim is
# unmeasurable (the shards time-slice one core) and is reported as
# `skipped:`, never failed — BENCH_LOADGEN.json records whether the
# committed numbers were measured with the speedup gated.
#
# Tunables (env): RTT_LOADGEN_RATE (jobs/sec, default 100),
# RTT_LOADGEN_DURATION (s, default 4), RTT_LOADGEN_CLIENTS (default 4),
# RTT_LOADGEN_DISTINCT (default 32), RTT_LOADGEN_SLO_MS (default 50).
set -euo pipefail

cd "$(dirname "$0")/.."
RTT=_build/default/bin/rtt.exe
BASELINE=BENCH_LOADGEN.json

RATE="${RTT_LOADGEN_RATE:-100}"
DURATION="${RTT_LOADGEN_DURATION:-4}"
CLIENTS="${RTT_LOADGEN_CLIENTS:-4}"
DISTINCT="${RTT_LOADGEN_DISTINCT:-32}"
SLO_MS="${RTT_LOADGEN_SLO_MS:-50}"

[ -x "$RTT" ] || { echo "loadgen_gate: $RTT missing — run dune build first" >&2; exit 2; }

cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
tmp=$(mktemp -d)
DAEMON_PID=""
cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -TERM "$DAEMON_PID" 2>/dev/null || true
    for _ in $(seq 1 100); do kill -0 "$DAEMON_PID" 2>/dev/null || break; sleep 0.1; done
    kill -KILL "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$tmp"
}
trap cleanup EXIT

field() { # field <json-file> <key>  — numeric scalar
  sed -n 's/.*"'"$2"'":\([0-9.]*\).*/\1/p' "$1" | head -1
}

# one measurement: boot a daemon with $1 shards, drive it, leave the
# report in $2
measure() {
  local shards="$1" out="$2" spool sock
  spool="$tmp/spool-$shards-$RANDOM"
  sock="$tmp/sock-$shards-$RANDOM"
  mkdir -p "$spool"
  "$RTT" daemon --spool "$spool" --socket "$sock" --shards "$shards" -b 3 &
  DAEMON_PID=$!
  local up=0
  for _ in $(seq 1 100); do [ -S "$sock" ] && { up=1; break; }; sleep 0.1; done
  [ "$up" -eq 1 ] || { echo "loadgen_gate: daemon did not come up" >&2; exit 2; }
  "$RTT" loadgen --socket "$sock" --clients "$CLIENTS" --rate "$RATE" \
    --duration "$DURATION" --warmup 1 --distinct "$DISTINCT" --out "$out" >/dev/null
  kill -TERM "$DAEMON_PID" 2>/dev/null || true
  for _ in $(seq 1 200); do kill -0 "$DAEMON_PID" 2>/dev/null || break; sleep 0.1; done
  kill -KILL "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=""
}

stamp() {
  # timestamped history + a stable `latest` name, the bench convention
  local src="$1" ts
  ts=$(date -u +%Y%m%d-%H%M%S)
  cp "$src" "loadgen-$ts.json"
  ln -sfn "loadgen-$ts.json" loadgen-latest.json
}

speedup_check() { # prints its verdict; returns 1 only on a real failure
  if [ "$cores" -lt 4 ]; then
    echo "skipped:  shard speedup gate needs >= 4 cores (have $cores) — 4 shards on $cores core(s) time-slice, the 2x claim is unmeasurable"
    return 0
  fi
  measure 4 "$tmp/shard4.json"
  local j1 j4 ok
  j1=$(field "$tmp/shard1.json" jobs_per_sec)
  j4=$(field "$tmp/shard4.json" jobs_per_sec)
  ok=$(awk -v a="$j1" -v b="$j4" 'BEGIN { print (b >= 2 * a) ? 1 : 0 }')
  if [ "$ok" -eq 1 ]; then
    echo "loadgen_gate: OK — 4 shards ${j4} jobs/s vs 1 shard ${j1} jobs/s (>= 2x)"
    return 0
  fi
  echo "loadgen_gate: FAIL — 4 shards ${j4} jobs/s vs 1 shard ${j1} jobs/s (< 2x)" >&2
  return 1
}

mode="${1:-gate}"
case "$mode" in
baseline)
  # saturation for the throughput figures, open-loop for the SLO p99
  measure 1 "$tmp/shard1.json"
  p99=$(field "$tmp/shard1.json" p99)
  jps=$(field "$tmp/shard1.json" jobs_per_sec)
  speedup="null"
  gated=true
  if [ "$cores" -ge 4 ]; then
    gated=false
    measure 4 "$tmp/shard4.json"
    j4=$(field "$tmp/shard4.json" jobs_per_sec)
    speedup=$(awk -v a="$jps" -v b="$j4" 'BEGIN { printf "%.2f", b / a }')
  fi
  printf '{"schema":"rtt-loadgen-baseline/1","cores":%s,"rate":%s,"duration_s":%s,"clients":%s,"shard1":{"jobs_per_sec":%s,"p99_ms":%s},"shard4_speedup":%s,"speedup_gated":%s}\n' \
    "$cores" "$RATE" "$DURATION" "$CLIENTS" "$jps" "$p99" "$speedup" "$gated" >"$BASELINE"
  stamp "$tmp/shard1.json"
  echo "loadgen_gate: wrote $BASELINE (cores=$cores, p99=${p99}ms, ${jps} jobs/s, speedup=$speedup)"
  ;;
gate)
  [ -f "$BASELINE" ] || {
    echo "loadgen_gate: committed baseline $BASELINE missing — run 'scripts/loadgen_gate.sh baseline' and commit it" >&2
    exit 2
  }
  base=$(sed -n 's/.*"p99_ms":\([0-9.]*\).*/\1/p' "$BASELINE" | head -1)
  [ -n "$base" ] || { echo "loadgen_gate: no p99_ms in $BASELINE" >&2; exit 2; }
  measure 1 "$tmp/run1.json"
  measure 1 "$tmp/run2.json"
  a=$(field "$tmp/run1.json" p99)
  b=$(field "$tmp/run2.json" p99)
  best=$(awk -v a="$a" -v b="$b" 'BEGIN { print (a < b) ? a : b }')
  stamp "$tmp/run1.json"
  quiet=$(awk -v a="$a" -v b="$b" \
    'BEGIN { lo = (a < b) ? a : b; hi = (a < b) ? b : a; print (hi <= 1.3 * lo) ? 1 : 0 }')
  if [ "$quiet" -ne 1 ]; then
    echo "skipped:  latency gate needs a quiet runner — back-to-back p99s ${a}ms and ${b}ms (>30% apart), comparison is informational"
    echo "loadgen_gate: best p99 ${best}ms, committed baseline ${base}ms"
    speedup_check || true
    exit 0
  fi
  allowed=$(awk -v b="$base" -v f="$SLO_MS" 'BEGIN { a = 1.25 * b; print (a > f) ? a : f }')
  pass=$(awk -v p="$best" -v a="$allowed" 'BEGIN { print (p <= a) ? 1 : 0 }')
  if [ "$pass" -ne 1 ]; then
    echo "loadgen_gate: FAIL — p99 ${best}ms against a ${base}ms baseline (allowed ${allowed}ms)" >&2
    exit 1
  fi
  echo "loadgen_gate: OK — p99 ${best}ms vs baseline ${base}ms (allowed ${allowed}ms)"
  speedup_check
  ;;
*)
  echo "usage: loadgen_gate.sh [gate|baseline]" >&2
  exit 2
  ;;
esac
