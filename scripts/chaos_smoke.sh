#!/usr/bin/env bash
# Chaos smoke test: drive `rtt chaos` over a seeded batch of fault
# schedules (in-process supervisor drains, and periodically a real
# primary/replica pair), then run `rtt fsck` through a full
# damage-and-repair cycle against a live peer. Deterministic: a failing
# seed prints its exact replay command. Tunables:
#   CHAOS_SEEDS       number of seeds to run (default 25)
#   CHAOS_FIRST_SEED  first seed (default 1)
#   CHAOS_MODE        inproc | nodes | both (default both)
#   CHAOS_TRANSCRIPT  file to keep the per-seed transcript in
# The whole run is wrapped in a hard timeout by the caller (CI), so a
# wedged node is a failure, not a hang.
set -euo pipefail

RTT=${RTT:-_build/default/bin/rtt.exe}
CHAOS_SEEDS=${CHAOS_SEEDS:-25}
CHAOS_FIRST_SEED=${CHAOS_FIRST_SEED:-1}
CHAOS_MODE=${CHAOS_MODE:-both}
WORK=$(mktemp -d)
TRANSCRIPT=${CHAOS_TRANSCRIPT:-$WORK/chaos.log}

cleanup() {
  for pid in "${PRIMARY_PID:-}" "${REPLICA_PID:-}"; do
    [[ -n "$pid" ]] && { kill -KILL "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; }
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_socket() {
  for _ in $(seq 1 100); do
    [[ -S "$1" ]] && return 0
    sleep 0.1
  done
  echo "FAIL: $1 never appeared"; exit 1
}

# ---- phase 1: the seeded chaos batch ----------------------------------
if ! "$RTT" chaos --seeds "$CHAOS_SEEDS" --first-seed "$CHAOS_FIRST_SEED" \
       --mode "$CHAOS_MODE" -v > "$TRANSCRIPT" 2>&1; then
  echo "FAIL: chaos batch (transcript follows)"
  cat "$TRANSCRIPT"
  exit 1
fi
tail -n 1 "$TRANSCRIPT"

# ---- phase 2: fsck damage-and-repair against a live replica -----------
A="$WORK/a"; B="$WORK/b"; CA="$WORK/ca"; CB="$WORK/cb"
ASOCK="$WORK/a.sock"; BSOCK="$WORK/b.sock"
mkdir -p "$A" "$B"

"$RTT" daemon --spool "$A" --socket "$ASOCK" -b 3 --cache-dir "$CA" &
PRIMARY_PID=$!
wait_socket "$ASOCK"
"$RTT" replica --spool "$B" --socket "$BSOCK" --primary "$ASOCK" --cache-dir "$CB" &
REPLICA_PID=$!
wait_socket "$BSOCK"

"$RTT" gen -k er -n 8 --seed 11 > "$WORK/i1.txt"
"$RTT" gen -k layered -n 8 --seed 12 > "$WORK/i2.txt"
for f in "$WORK/i1.txt" "$WORK/i2.txt"; do
  "$RTT" submit "$f" --socket "$ASOCK" --wait --timeout 60 > /dev/null \
    || { echo "FAIL: submit --wait"; exit 1; }
done
for _ in $(seq 1 100); do
  cmp -s "$A/journal.log" "$B/journal.log" && break
  sleep 0.1
done
cmp "$A/journal.log" "$B/journal.log" \
  || { echo "FAIL: journals did not converge before the damage"; exit 1; }

# power-cut the primary, then vandalize its spool: torn journal tail
# (losing committed records), a deleted result file, a bit-flipped
# cache entry
kill -KILL "$PRIMARY_PID"; wait "$PRIMARY_PID" 2>/dev/null || true
PRIMARY_PID=""
SIZE=$(wc -c < "$A/journal.log")
head -c "$((SIZE - 40))" "$A/journal.log" > "$A/journal.tmp" \
  && mv "$A/journal.tmp" "$A/journal.log"
RESULT=$(ls "$A"/*.result | head -n 1)
rm "$RESULT"
ENTRY=$(ls "$CA"/*.rttc | head -n 1)
printf 'X' | dd of="$ENTRY" bs=1 seek=30 count=1 conv=notrunc 2>/dev/null

# a plain scan must refuse to bless this spool
if "$RTT" fsck "$A" --cache-dir "$CA" -b 3 > /dev/null; then
  echo "FAIL: fsck called a damaged spool clean"; exit 1
fi

# repair against the live replica, then a rescan must come back clean
CODE=0
"$RTT" fsck "$A" --cache-dir "$CA" -b 3 --repair --from "$BSOCK" > /dev/null || CODE=$?
[[ "$CODE" -eq 51 ]] || { echo "FAIL: fsck --repair exited $CODE, want 51"; exit 1; }
"$RTT" fsck "$A" --cache-dir "$CA" -b 3 > /dev/null \
  || { echo "FAIL: rescan after repair is not clean"; exit 1; }
cmp "$A/journal.log" "$B/journal.log" \
  || { echo "FAIL: repaired journal is not byte-identical to the replica's"; exit 1; }
[[ -f "$RESULT" ]] || { echo "FAIL: deleted result file was not backfilled"; exit 1; }

# the daemon restarts on the repaired spool and still serves
"$RTT" daemon --spool "$A" --socket "$ASOCK" -b 3 --cache-dir "$CA" &
PRIMARY_PID=$!
"$RTT" submit "$WORK/i1.txt" --socket "$ASOCK" --wait --timeout 60 > /dev/null \
  || { echo "FAIL: restarted daemon did not serve"; exit 1; }
DONES=$(grep -c " done " "$A/journal.log" || true)
JOBS=$(grep -c " queued " "$A/journal.log" || true)
[[ "$DONES" -le "$JOBS" ]] \
  || { echo "FAIL: more done records than jobs ($DONES > $JOBS)"; exit 1; }

echo "PASS: $CHAOS_SEEDS chaos seeds survived; damaged spool repaired from a live replica and served again"
