#!/usr/bin/env bash
# Perf gate for the LP-heavy bench sections plus the worker-pool
# throughput section.
#
# For each gated section: run it twice with --json (one bench process
# runs all sections, twice) and compare the faster run against the
# committed BENCH_5.json baseline — more than the section's budget
# slower fails the gate. When the two fresh runs of a section disagree
# with each other by more than 30% the runner is too noisy to judge
# that section and the gate prints a `skipped:` line instead (same
# convention as the bench's own T1 speedup table). Sections whose
# committed baseline is under the floor (50 ms) are below timer noise
# and are reported informationally, never failed.
#
# Wall time, not fuel: fuel counts are already asserted bit-for-bit by
# the bench verdicts; this gate exists to catch constant-factor
# regressions (a lost fast path, an accidental deep copy) that fuel
# cannot see.
#
# Pivot counts ARE gated bit-for-bit: Bland's rule over exact rationals
# is deterministic, so any drift in a section's `pivots` field against
# the committed baseline means the simplex took a different path — a
# semantic change that must be reviewed and recommitted deliberately,
# never absorbed as noise.
set -euo pipefail

cd "$(dirname "$0")/.."
BASELINE=BENCH_5.json
BENCH=_build/default/bench/main.exe

# section -> regression budget (T1 forks workers, so it breathes more)
SECTIONS=(E1 E2 E3 E14 E16 A2 A4 T1 S1)
budget_of() { case "$1" in T1) echo 1.3 ;; *) echo 1.2 ;; esac; }
FLOOR=0.05

# LP-heavy sections whose Bland pivot sequence is deterministic: the
# fresh `pivots` count must equal the committed baseline exactly
PIVOT_SECTIONS=(E1 E2 E3 E14 E16 A2 A4 S1)

[ -x "$BENCH" ] || { echo "bench_gate: $BENCH missing — run dune build first" >&2; exit 2; }
[ -f "$BASELINE" ] || { echo "bench_gate: committed baseline $BASELINE missing" >&2; exit 2; }

# extract one section's seconds field from a BENCH_5.json-shaped file
seconds_of() {
  sed -n 's/.*"id":"'"$2"'".*"seconds":\([0-9.]*\).*/\1/p' "$1" | head -1
}

# extract one section's pivots field (an integer — exact compare)
pivots_of() {
  sed -n 's/.*"id":"'"$2"'".*"pivots":\([0-9]*\).*/\1/p' "$1" | head -1
}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
repo=$PWD

for i in 1 2; do
  (cd "$tmp" && mkdir -p "run$i" && cd "run$i" && "$repo/$BENCH" --json "${SECTIONS[@]}" >/dev/null)
done

fail=0
for sec in "${SECTIONS[@]}"; do
  base=$(seconds_of "$BASELINE" "$sec")
  if [ -z "$base" ]; then
    echo "bench_gate: $sec has no committed baseline in $BASELINE — add one by committing a fresh run" >&2
    fail=1
    continue
  fi
  a=$(seconds_of "$tmp/run1/BENCH_5.json" "$sec")
  b=$(seconds_of "$tmp/run2/BENCH_5.json" "$sec")
  for run in 1 2; do
    grep -q '"id":"'"$sec"'".*"ok":true' "$tmp/run$run/BENCH_5.json" \
      || { echo "bench_gate: $sec failed its own verdict" >&2; exit 1; }
  done
  if [[ " ${PIVOT_SECTIONS[*]} " == *" $sec "* ]]; then
    base_p=$(pivots_of "$BASELINE" "$sec")
    fresh_p=$(pivots_of "$tmp/run1/BENCH_5.json" "$sec")
    if [ "$fresh_p" != "$base_p" ]; then
      echo "bench_gate: FAIL — $sec took $fresh_p pivots against a baseline of $base_p; the" >&2
      echo "            simplex pivot sequence changed — if intentional, recommit $BASELINE" >&2
      fail=1
    else
      echo "bench_gate: OK — $sec pivots $fresh_p match the committed baseline exactly"
    fi
  fi
  fresh=$(awk -v a="$a" -v b="$b" 'BEGIN { print (a < b) ? a : b }')
  small=$(awk -v base="$base" -v floor="$FLOOR" 'BEGIN { print (base < floor) ? 1 : 0 }')
  if [ "$small" -eq 1 ]; then
    echo "bench_gate: $sec baseline ${base}s is under the ${FLOOR}s floor — informational only (fresh ${fresh}s)"
    continue
  fi
  quiet=$(awk -v a="$a" -v b="$b" \
    'BEGIN { lo = (a < b) ? a : b; hi = (a < b) ? b : a; print (hi <= 1.3 * lo) ? 1 : 0 }')
  if [ "$quiet" -ne 1 ]; then
    echo "skipped:  perf gate needs a quiet runner — back-to-back $sec runs took ${a}s and ${b}s (>30% apart), comparison is informational"
    echo "bench_gate: $sec fastest ${fresh}s, committed baseline ${base}s"
    continue
  fi
  budget=$(budget_of "$sec")
  pass=$(awk -v f="$fresh" -v b="$base" -v m="$budget" 'BEGIN { print (f <= m * b) ? 1 : 0 }')
  if [ "$pass" -ne 1 ]; then
    echo "bench_gate: FAIL — $sec took ${fresh}s against a ${base}s baseline (budget ${budget}x)" >&2
    fail=1
  else
    echo "bench_gate: OK — $sec ${fresh}s vs baseline ${base}s (within the ${budget}x budget)"
  fi
done

exit "$fail"
