#!/usr/bin/env bash
# Perf gate for the exact-LP fast path.
#
# Runs the E1 section of the bench harness twice with --json and
# compares the faster run against the committed BENCH_5.json baseline:
# more than 20% slower fails the gate. When the two fresh runs disagree
# with each other by more than 30% the runner is too noisy to judge and
# the gate prints a `skipped:` line instead (same convention as the
# bench's own T1 speedup table) and exits 0.
#
# Wall time, not fuel: fuel counts are already asserted bit-for-bit by
# the bench verdicts; this gate exists to catch constant-factor
# regressions (a lost fast path, an accidental deep copy) that fuel
# cannot see.
set -euo pipefail

cd "$(dirname "$0")/.."
BASELINE=BENCH_5.json
BENCH=_build/default/bench/main.exe

[ -x "$BENCH" ] || { echo "bench_gate: $BENCH missing — run dune build first" >&2; exit 2; }
[ -f "$BASELINE" ] || { echo "bench_gate: committed baseline $BASELINE missing" >&2; exit 2; }

# extract the E1 seconds field from a BENCH_5.json-shaped file
e1_seconds() {
  sed -n 's/.*"id":"E1".*"seconds":\([0-9.]*\).*/\1/p' "$1" | head -1
}

base=$(e1_seconds "$BASELINE")
[ -n "$base" ] || { echo "bench_gate: no E1 record in $BASELINE" >&2; exit 2; }

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
repo=$PWD

runs=()
for _ in 1 2; do
  (cd "$tmp" && "$repo/$BENCH" --json E1 >/dev/null)
  grep -q '"id":"E1".*"ok":true' "$tmp/BENCH_5.json" \
    || { echo "bench_gate: E1 failed its own verdict" >&2; exit 1; }
  runs+=("$(e1_seconds "$tmp/BENCH_5.json")")
done

fresh=$(awk -v a="${runs[0]}" -v b="${runs[1]}" 'BEGIN { print (a < b) ? a : b }')
quiet=$(awk -v a="${runs[0]}" -v b="${runs[1]}" \
  'BEGIN { lo = (a < b) ? a : b; hi = (a < b) ? b : a; print (hi <= 1.3 * lo) ? 1 : 0 }')

if [ "$quiet" -ne 1 ]; then
  echo "skipped:  perf gate needs a quiet runner — back-to-back E1 runs took ${runs[0]}s and ${runs[1]}s (>30% apart), comparison is informational"
  echo "bench_gate: E1 fastest ${fresh}s, committed baseline ${base}s"
  exit 0
fi

pass=$(awk -v f="$fresh" -v b="$base" 'BEGIN { print (f <= 1.2 * b) ? 1 : 0 }')
if [ "$pass" -ne 1 ]; then
  echo "bench_gate: FAIL — E1 took ${fresh}s against a ${base}s baseline (>20% regression)" >&2
  exit 1
fi
echo "bench_gate: OK — E1 ${fresh}s vs baseline ${base}s (within the 20% budget)"
