#!/usr/bin/env bash
# Two-node replication smoke test: start a primary `rtt daemon` and an
# `rtt replica` follower, submit work, assert the journals converge
# byte-for-byte and the follower serves the result read-only; then
# SIGKILL the primary mid-retry-churn, `rtt promote` the follower, and
# assert the promoted node finishes the in-flight job EXACTLY once.
# The whole run is wrapped in a hard timeout by the caller (CI), so a
# wedged node is a failure, not a hang.
set -euo pipefail

RTT=${RTT:-_build/default/bin/rtt.exe}
WORK=$(mktemp -d)
A="$WORK/a"; B="$WORK/b"
ASOCK="$WORK/a.sock"; BSOCK="$WORK/b.sock"
mkdir -p "$A" "$B"

cleanup() {
  for pid in "${PRIMARY_PID:-}" "${REPLICA_PID:-}"; do
    [[ -n "$pid" ]] && { kill -KILL "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; }
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_socket() {
  for _ in $(seq 1 100); do
    [[ -S "$1" ]] && return 0
    sleep 0.1
  done
  echo "FAIL: $1 never appeared"; exit 1
}

# ---- phase 1: steady-state replication --------------------------------
"$RTT" daemon --spool "$A" --socket "$ASOCK" -b 3 &
PRIMARY_PID=$!
wait_socket "$ASOCK"
"$RTT" replica --spool "$B" --socket "$BSOCK" --primary "$ASOCK" &
REPLICA_PID=$!
wait_socket "$BSOCK"

"$RTT" gen -k hub -n 16 --seed 7 > "$WORK/i1.txt"
"$RTT" submit "$WORK/i1.txt" --socket "$ASOCK" --wait --timeout 60 > /dev/null \
  || { echo "FAIL: submit --wait on the primary"; exit 1; }
ID=$("$RTT" submit "$WORK/i1.txt" --socket "$ASOCK")

# journals must converge byte-for-byte at quiescence
for _ in $(seq 1 100); do
  cmp -s "$A/journal.log" "$B/journal.log" && break
  sleep 0.1
done
cmp "$A/journal.log" "$B/journal.log" \
  || { echo "FAIL: journals did not converge"; exit 1; }

# the follower answers status locally and refuses writes
"$RTT" status "$ID" --socket "$BSOCK" | grep -q '"state":"done"' \
  || { echo "FAIL: follower does not see the job done"; exit 1; }
if "$RTT" submit "$WORK/i1.txt" --socket "$BSOCK" 2>/dev/null; then
  echo "FAIL: follower accepted a write"; exit 1
fi
"$RTT" status --socket "$ASOCK" | grep -q '"lag":0' \
  || { echo "FAIL: primary reports follower lag at quiescence"; exit 1; }

# ---- phase 2: SIGKILL the primary, promote the follower ---------------
# restart the pair with a fuel deadline that keeps the next job in a
# transient-failure retry loop, so the kill provably lands mid-flight
kill -KILL "$PRIMARY_PID"; wait "$PRIMARY_PID" 2>/dev/null || true
kill -KILL "$REPLICA_PID"; wait "$REPLICA_PID" 2>/dev/null || true
rm -rf "$A" "$B" "$ASOCK" "$BSOCK"; mkdir -p "$A" "$B"

"$RTT" daemon --spool "$A" --socket "$ASOCK" -b 3 \
  --deadline-fuel 20 --fallback exact --max-attempts 100000 &
PRIMARY_PID=$!
wait_socket "$ASOCK"
"$RTT" replica --spool "$B" --socket "$BSOCK" --primary "$ASOCK" \
  --max-attempts 100000 &
REPLICA_PID=$!
wait_socket "$BSOCK"

"$RTT" gen -k layered -n 9 --seed 42 > "$WORK/i2.txt"
ID=$("$RTT" submit "$WORK/i2.txt" --socket "$ASOCK")

# wait until the claim (a started record) has replicated to the follower
for _ in $(seq 1 100); do
  grep -q " started " "$B/journal.log" 2>/dev/null && break
  sleep 0.1
done
grep -q " started " "$B/journal.log" \
  || { echo "FAIL: claim never replicated"; exit 1; }

kill -KILL "$PRIMARY_PID"; wait "$PRIMARY_PID" 2>/dev/null || true
PRIMARY_PID=""

"$RTT" promote --socket "$BSOCK" | grep -q promoting \
  || { echo "FAIL: promote not acknowledged"; exit 1; }

# the promoted node must finish the adopted job
for _ in $(seq 1 300); do
  "$RTT" status "$ID" --socket "$BSOCK" --connect-attempts 4 2>/dev/null \
    | grep -q '"state":"done"' && break
  sleep 0.2
done
"$RTT" status "$ID" --socket "$BSOCK" | grep -q '"state":"done"' \
  || { echo "FAIL: promoted node never finished the job"; exit 1; }

# exactly once: one done record across both lives of the job
DONES=$(grep -c " done " "$B/journal.log" || true)
if [[ "$DONES" -ne 1 ]]; then
  echo "FAIL: expected exactly one done record, got $DONES"
  exit 1
fi

echo "PASS: replicated, converged byte-for-byte, failed over, finished exactly once"
