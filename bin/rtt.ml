(* rtt - command-line front end for the resource-time tradeoff library.

   Subcommands:
     solve    run an algorithm on an instance file
     gen      generate a random instance file
     exact    brute-force optimum of a (small) instance file
     sp       solve a random series-parallel instance with the exact DP
     reduce   run one of the paper's hardness reductions
     dot      export an instance's DAG as Graphviz
     demo     the Figure 4/5 walkthrough
     serve    drain a spool directory of jobs, crash-safely
     jobs     report the journaled state of a spool
     daemon   serve the batch service over a socket
     submit   send an instance to a running daemon
     status   ask a running daemon for one job's state
     session  drive a live mutable instance on a running daemon *)

open Cmdliner
open Rtt_dag
open Rtt_num
open Rtt_core
open Rtt_engine

(* ------------------------------------------------------------------ *)
(* shared arguments                                                    *)

let instance_arg =
  let doc = "Instance file (see lib/core/io.mli for the format)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INSTANCE" ~doc)

let budget_arg =
  let doc = "Resource budget B." in
  Arg.(value & opt int 4 & info [ "b"; "budget" ] ~docv:"B" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

(* Every error class owns a stable nonzero exit code (Error.exit_code);
   the message goes to stderr so stdout stays machine-readable. *)
let report_error e =
  Format.eprintf "rtt: %s@." (Error.to_string e);
  Error.exit_code e

let with_instance path k =
  match Engine.load path with Error e -> report_error e | Ok p -> k p

let alpha_conv =
  let parse s =
    match Rat.of_string s with
    | a when Rat.(a > Rat.zero) && Rat.(a < Rat.one) -> Ok a
    | _ -> Error (`Msg (Printf.sprintf "alpha %s must lie strictly between 0 and 1" s))
    | exception _ ->
        Error (`Msg (Printf.sprintf "alpha %S is not a rational; write e.g. 1/2 or 2/3" s))
  in
  Arg.conv ~docv:"ALPHA" (parse, fun fmt a -> Format.pp_print_string fmt (Rat.to_string a))

let alpha_arg =
  let doc = "Rounding threshold alpha for the bicriteria rung, a rational strictly inside (0, 1)." in
  Arg.(value & opt alpha_conv Rat.half & info [ "alpha" ] ~docv:"ALPHA" ~doc)

let fuel_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok n
    | _ -> Error (`Msg (Printf.sprintf "fuel %S must be a non-negative integer" s))
  in
  Arg.conv ~docv:"FUEL" (parse, Format.pp_print_int)

let fuel_arg =
  let doc =
    "Deterministic per-rung step budget (simplex pivots + flow augmentations + exact \
     enumeration steps). A rung that exhausts it fails with fuel-exhausted and the next \
     rung of the chain starts fresh. Unmetered when absent."
  in
  Arg.(value & opt (some fuel_conv) None & info [ "fuel" ] ~docv:"FUEL" ~doc)

let no_warmstart_arg =
  (* a unit term: evaluating it applies the toggle, so commands just
     prepend it and take a leading () *)
  let doc =
    "Disable the float-guided warm start of the exact simplex; every LP then runs the full \
     two-phase method from scratch. Results are identical either way — this is a performance \
     toggle for benchmarking and for auditing the float-free path. Equivalent to setting \
     RTT_LP_WARMSTART=0."
  in
  let term = Arg.(value & flag & info [ "no-float-warmstart" ] ~doc) in
  Term.(const (fun off -> if off then Rtt_lp.Simplex.warmstart_enabled := false) $ term)

let pp_alloc = Engine.render_allocation

(* ------------------------------------------------------------------ *)
(* solve                                                               *)

let algo_enum = Arg.enum (List.map (fun r -> (Policy.rung_name r, r)) Policy.all_rungs)

let policy_conv =
  let parse s = match Policy.of_string s with Ok p -> Ok p | Error m -> Error (`Msg m) in
  Arg.conv ~docv:"CHAIN" (parse, fun fmt p -> Format.pp_print_string fmt (Policy.to_string p))

let inject_conv =
  (* SITE or SITE:AFTER, e.g. lp-infeasible or flow-abort:2 *)
  let parse s =
    let site_str, after =
      match String.index_opt s ':' with
      | None -> (s, Ok 0)
      | Some i -> (
          let tail = String.sub s (i + 1) (String.length s - i - 1) in
          ( String.sub s 0 i,
            match int_of_string_opt tail with
            | Some n when n >= 0 -> Ok n
            | _ -> Error (`Msg (Printf.sprintf "bad trigger count %S" tail)) ))
    in
    match (Faults.of_string site_str, after) with
    | _, (Error _ as e) -> e
    | Some site, Ok after -> Ok (site, after)
    | None, _ ->
        Error
          (`Msg
             (Printf.sprintf "unknown fault site %S (expected %s)" site_str
                (String.concat "|" (List.map Faults.name Faults.all))))
  in
  let print fmt (site, after) = Format.fprintf fmt "%s:%d" (Faults.name site) after in
  Arg.conv ~docv:"SITE[:AFTER]" (parse, print)

let solve_cmd =
  let algo =
    let doc =
      "Single algorithm to run (a one-rung chain): exact | bicriteria | binary-bicriteria | \
       binary | kway | greedy | baseline. Ignored when $(b,--fallback) is given."
    in
    Arg.(value & opt algo_enum Policy.Bicriteria & info [ "a"; "algo" ] ~docv:"ALGO" ~doc)
  in
  let fallback =
    let doc =
      "Degrade through a comma-separated fallback chain instead of a single algorithm, e.g. \
       $(b,exact,bicriteria,greedy). Plain $(b,--fallback) uses the default chain \
       exact,bicriteria,greedy,baseline. Each failed rung is reported, never silent."
    in
    Arg.(
      value
      & opt ~vopt:(Some Policy.default) (some policy_conv) None
      & info [ "fallback" ] ~docv:"CHAIN" ~doc)
  in
  let inject =
    let doc =
      "Arm a fault-injection site before solving (repeatable): lp-infeasible | flow-abort | \
       fuel-zero, optionally with a trigger count as SITE:AFTER. For exercising the fallback \
       chain and the certificate validator."
    in
    Arg.(value & opt_all inject_conv [] & info [ "inject" ] ~docv:"SITE[:AFTER]" ~doc)
  in
  let run () path algo fallback fuel alpha inject budget =
    with_instance path @@ fun p ->
    let policy = match fallback with Some chain -> chain | None -> [ algo ] in
    Faults.reset ();
    List.iter (fun (site, after) -> Faults.arm ~after site) inject;
    let result = Engine.solve ?fuel ~policy ~alpha p ~budget in
    Faults.reset ();
    match result with
    | Error e -> report_error e
    | Ok s ->
        Format.printf "%a@." Engine.pp_success s;
        Format.printf "allocation: %s@." (pp_alloc p s.Engine.allocation);
        0
  in
  let info =
    Cmd.info "solve"
      ~doc:
        "Solve an instance through the hardened engine: structured errors, optional fuel \
         budget, fallback chains, certificate validation."
  in
  Cmd.v info
    Term.(
      const run $ no_warmstart_arg $ instance_arg $ algo $ fallback $ fuel_arg $ alpha_arg
      $ inject $ budget_arg)

(* ------------------------------------------------------------------ *)
(* exact                                                               *)

let exact_cmd =
  let target =
    let doc = "Makespan target (switches to the minimum-resource objective)." in
    Arg.(value & opt (some int) None & info [ "t"; "target" ] ~docv:"T" ~doc)
  in
  let run path budget target fuel =
    with_instance path @@ fun p ->
    match target with
    | None -> (
        match Engine.solve ?fuel ~policy:[ Policy.Exact ] p ~budget with
        | Error e -> report_error e
        | Ok s ->
            Format.printf "optimal makespan: %d (budget used %d of %d)@." s.Engine.makespan
              s.Engine.budget_used budget;
            Format.printf "allocation: %s@." (pp_alloc p s.Engine.allocation);
            0)
    | Some t -> (
        match Rtt_budget.Budget.with_fuel fuel (fun () -> Exact.min_resource p ~target:t) with
        | Some r ->
            Format.printf "minimum resources for makespan <= %d: %d@." t r.Exact.budget_used;
            Format.printf "allocation: %s@." (pp_alloc p r.Exact.allocation);
            0
        | None ->
            Format.printf "target %d is unreachable at any budget@." t;
            0
        | exception Exact.Too_large states -> report_error (Error.Too_large { states })
        | exception Rtt_budget.Budget.Fuel_exhausted { stage; spent } ->
            report_error (Error.Fuel_exhausted { stage; spent }))
  in
  let info = Cmd.info "exact" ~doc:"Brute-force optimum of a small instance." in
  Cmd.v info Term.(const run $ instance_arg $ budget_arg $ target $ fuel_arg)

(* ------------------------------------------------------------------ *)
(* gen                                                                 *)

let gen_cmd =
  let kind =
    Arg.enum [ ("hub", `Hub); ("layered", `Layered); ("er", `Er) ]
    |> fun e ->
    Arg.(value & opt e `Hub & info [ "k"; "kind" ] ~docv:"KIND" ~doc:"hub | layered | er (hub instances have fan-in heavy nodes where reducers matter).")
  in
  let n =
    Arg.(value & opt int 10 & info [ "n" ] ~docv:"N" ~doc:"Number of vertices (hubs x fan for hub; layers for layered).")
  in
  let run kind n seed =
    let rng = Random.State.make [| seed |] in
    let g =
      match kind with
      | `Layered -> Gen.layered rng ~layers:n ~width:4 ~edge_prob:0.3
      | `Er -> Gen.erdos_renyi rng ~n ~edge_prob:0.35
      | `Hub ->
          let g = Dag.create () in
          let s = Dag.add_vertex ~label:"s" g in
          let prev = ref s in
          let hubs = max 1 (n / 8) in
          for _ = 1 to hubs do
            let hub = Dag.add_vertex g in
            let feeders = List.init (6 + Random.State.int rng 6) (fun _ -> Dag.add_vertex g) in
            List.iter
              (fun f ->
                Dag.add_edge g !prev f;
                Dag.add_edge g f hub)
              feeders;
            prev := hub
          done;
          let t = Dag.add_vertex ~label:"t" g in
          Dag.add_edge g !prev t;
          g
    in
    let p = Problem.of_race_dag g Problem.Binary in
    print_string (Io.to_string p);
    0
  in
  let info = Cmd.info "gen" ~doc:"Generate a random instance on stdout." in
  Cmd.v info Term.(const run $ kind $ n $ seed_arg)

(* ------------------------------------------------------------------ *)
(* sp                                                                  *)

let sp_cmd =
  let leaves = Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Number of jobs.") in
  let run leaves budget seed =
    let rng = Random.State.make [| seed |] in
    let tree =
      Sp.map
        (fun _ -> Rtt_duration.Binary_split.to_duration ~work:(4 + Random.State.int rng 28))
        (Gen.random_sp rng ~leaves ~series_bias:0.5)
    in
    Format.printf "structure: %a@." (Sp.pp (fun fmt d -> Rtt_duration.Duration.pp fmt d)) tree;
    let ms, alloc = Sp_exact.min_makespan tree ~budget in
    Format.printf "optimal makespan with B=%d: %d@." budget ms;
    Format.printf "allocation: %s@."
      (String.concat " " (List.map string_of_int (Sp.leaves alloc)));
    0
  in
  let info = Cmd.info "sp" ~doc:"Exact DP on a random series-parallel instance (Section 3.4)." in
  Cmd.v info Term.(const run $ leaves $ budget_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* reduce                                                              *)

let reduce_cmd =
  let kind =
    Arg.enum
      [ ("sat", `Sat); ("sat-split", `Split); ("minresource", `Minres); ("partition", `Partition); ("n3dm", `N3dm) ]
    |> fun e ->
    Arg.(required & pos 0 (some e) None & info [] ~docv:"KIND" ~doc:"sat | sat-split | minresource | partition | n3dm.")
  in
  let run kind seed =
    let open Rtt_reductions in
    let rng = Random.State.make [| seed |] in
    (match kind with
    | `Sat ->
        let f = Sat.random rng ~n_vars:3 ~n_clauses:2 in
        Format.printf "formula: %a@." Sat.pp f;
        let red = Gadget_general.reduce f in
        Format.printf "budget n+2m = %d, target 1, %d jobs@." red.Gadget_general.budget
          (Problem.n_jobs red.Gadget_general.instance.Aoa.problem);
        (match Gadget_general.decide_by_assignments red with
        | Some _ -> Format.printf "result: YES (matches SAT oracle: %b)@." (Sat.solve f <> None)
        | None -> Format.printf "result: NO (matches SAT oracle: %b)@." (Sat.solve f = None))
    | `Split ->
        let f = Sat.random rng ~n_vars:3 ~n_clauses:1 in
        Format.printf "formula: %a@." Sat.pp f;
        let red = Gadget_split.reduce f in
        Format.printf "x = %d, y = %d, budget 2n+4m = %d, target %d, %d cells@." red.Gadget_split.x
          red.Gadget_split.y red.Gadget_split.budget red.Gadget_split.target
          (Dag.n_vertices red.Gadget_split.dag);
        (match Gadget_split.decide_by_assignments red with
        | Some _ -> Format.printf "result: YES (oracle: %b)@." (Sat.solve f <> None)
        | None -> Format.printf "result: NO (oracle: %b)@." (Sat.solve f = None))
    | `Minres ->
        let f = Sat.random rng ~n_vars:4 ~n_clauses:3 in
        Format.printf "formula: %a@." Sat.pp f;
        let red = Minresource_red.reduce f in
        Format.printf "minimum units: %d (2 iff satisfiable; oracle satisfiable: %b)@."
          (Minresource_red.min_units red) (Sat.solve f <> None)
    | `Partition ->
        let items = Array.init (4 + Random.State.int rng 3) (fun _ -> 1 + Random.State.int rng 8) in
        Format.printf "items: [%s]@."
          (String.concat "; " (Array.to_list (Array.map string_of_int items)));
        let red = Partition_red.reduce items in
        Format.printf "budget %d, target %d, treewidth certificate width %d@." red.Partition_red.budget
          red.Partition_red.target
          (Treewidth.width (Partition_red.tree_decomposition red));
        Format.printf "result: %s (oracle: %b)@."
          (if Partition_red.decide_by_subsets red <> None then "YES" else "NO")
          (Partition_red.partition_exists items)
    | `N3dm ->
        let n = 2 + Random.State.int rng 2 in
        let rec gen () =
          let mk () = Array.init n (fun _ -> 1 + Random.State.int rng 5) in
          let a = mk () and b = mk () and c = mk () in
          let total = Array.fold_left ( + ) 0 (Array.concat [ a; b; c ]) in
          if total mod n = 0 then (a, b, c) else gen ()
        in
        let a, b, c = gen () in
        let show arr = String.concat ";" (Array.to_list (Array.map string_of_int arr)) in
        Format.printf "A=[%s] B=[%s] C=[%s]@." (show a) (show b) (show c);
        let red = Rtt_reductions.N3dm_red.reduce ~a ~b ~c in
        Format.printf "budget n^2 = %d, target 2M+T = %d@." (N3dm_red.budget red) (N3dm_red.target red);
        Format.printf "result: %s (oracle: %b)@."
          (if N3dm_red.decide_by_matchings red <> None then "YES" else "NO")
          (N3dm_red.n3dm_exists ~a ~b ~c <> None));
    0
  in
  let info = Cmd.info "reduce" ~doc:"Run one of the paper's hardness reductions on a random instance." in
  Cmd.v info Term.(const run $ kind $ seed_arg)

(* ------------------------------------------------------------------ *)
(* pareto                                                              *)

let pareto_cmd =
  let approx =
    Arg.(value & flag & info [ "approx" ] ~doc:"Use the (4/3,14/5) LP pipeline instead of brute force.")
  in
  let max_budget =
    Arg.(value & opt int 8 & info [ "max-budget" ] ~docv:"B" ~doc:"Largest budget to sweep (default 8; exact sweeps are exponential).")
  in
  let run () path approx max_budget =
    with_instance path @@ fun p ->
    let curve =
      if approx then Pareto.approximate ~max_budget p else Pareto.exact ~max_budget p
    in
    Format.printf "%8s | %10s@." "budget" "makespan";
    List.iter
      (fun (pt : Pareto.point) -> Format.printf "%8d | %10d@." pt.Pareto.budget pt.Pareto.makespan)
      curve;
    let knees = Pareto.knees curve in
    Format.printf "knees: %s@."
      (String.concat ", " (List.map (fun (k : Pareto.point) -> string_of_int k.Pareto.budget) knees));
    0
  in
  let info = Cmd.info "pareto" ~doc:"Sweep the space-time tradeoff curve of an instance." in
  Cmd.v info Term.(const run $ no_warmstart_arg $ instance_arg $ approx $ max_budget)

(* ------------------------------------------------------------------ *)
(* dot                                                                 *)

let dot_cmd =
  let run path =
    with_instance path @@ fun p ->
    print_string (Dot.to_dot ~name:"instance" p.Problem.dag);
    0
  in
  let info = Cmd.info "dot" ~doc:"Export an instance's DAG as Graphviz DOT on stdout." in
  Cmd.v info Term.(const run $ instance_arg)

(* ------------------------------------------------------------------ *)
(* demo                                                                *)

let demo_cmd =
  let run () =
    let g = Dag.create () in
    let s = Dag.add_vertex ~label:"s" g in
    let a = Dag.add_vertex ~label:"a" g in
    let b = Dag.add_vertex ~label:"b" g in
    let c = Dag.add_vertex ~label:"c" g in
    let d = Dag.add_vertex ~label:"d" g in
    let t = Dag.add_vertex ~label:"t" g in
    let xs = List.init 5 (fun i -> Dag.add_vertex ~label:(Printf.sprintf "x%d" i) g) in
    Dag.add_edge g s a;
    Dag.add_edge g a b;
    Dag.add_edge g b c;
    List.iter
      (fun x ->
        Dag.add_edge g s x;
        Dag.add_edge g x c)
      xs;
    Dag.add_edge g c d;
    Dag.add_edge g (List.hd xs) d;
    Dag.add_edge g d t;
    let p = Problem.of_race_dag g Problem.Binary in
    Format.printf "Figure 4/5 walkthrough: node c has in-degree 6, works = in-degrees.@.";
    let ms0, path = Schedule.critical_path p (Schedule.zero_allocation p) in
    Format.printf "no extra space: makespan %d along %s@." ms0
      (String.concat " -> "
         (List.map (fun v -> Option.value ~default:(string_of_int v) (Dag.label p.Problem.dag v)) path));
    let r = Exact.min_makespan p ~budget:2 in
    Format.printf "two units of space: makespan %d, allocation %s@." r.Exact.makespan
      (pp_alloc p r.Exact.allocation);
    0
  in
  let info = Cmd.info "demo" ~doc:"The Figure 4/5 walkthrough (makespan 11 -> 10 with 2 units)." in
  Cmd.v info Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* serve / jobs                                                        *)

let spool_arg =
  let doc = "Spool directory: instance files ($(b,*.rtt)) plus the journal and sidecars." in
  Arg.(required & opt (some dir) None & info [ "spool" ] ~docv:"DIR" ~doc)

let serve_cmd =
  let open Rtt_service in
  let max_attempts =
    let doc = "Attempts per job before it is declared dead." in
    Arg.(value & opt int 3 & info [ "max-attempts" ] ~docv:"N" ~doc)
  in
  let deadline_fuel =
    let doc = "Per-attempt fuel deadline; a job that exhausts it fails transiently and is retried." in
    Arg.(value & opt (some fuel_conv) None & info [ "deadline-fuel" ] ~docv:"F" ~doc)
  in
  let checkpoint_every =
    let doc = "Ticks between checkpoint snapshots of the in-flight solve." in
    Arg.(value & opt int 1000 & info [ "checkpoint-every" ] ~docv:"K" ~doc)
  in
  let fallback =
    let doc = "Fallback chain used for every job (default exact,bicriteria,greedy,baseline)." in
    Arg.(value & opt policy_conv Policy.default & info [ "fallback" ] ~docv:"CHAIN" ~doc)
  in
  let no_sleep =
    let doc = "Do not pause between retries (backoff is still journaled)." in
    Arg.(value & flag & info [ "no-sleep" ] ~doc)
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Progress lines on stderr.") in
  let workers =
    let doc =
      "Drain with $(docv) forked worker processes. The parent keeps sole ownership of the \
       journal; each worker solves in its own process with its own fuel deadline. 1 (the \
       default) drains in-process."
    in
    Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let cache_dir =
    let doc =
      "Content-addressed result cache directory. Solved instances are published under their \
       canonical digest; duplicate instances in the spool are solved once and re-submissions \
       are served from the cache with zero fuel."
    in
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let run () spool budget fallback max_attempts deadline_fuel checkpoint_every seed no_sleep
      verbose workers cache_dir =
    if checkpoint_every <= 0 then begin
      Format.eprintf "rtt: --checkpoint-every must be positive@.";
      124
    end
    else if max_attempts <= 0 then begin
      Format.eprintf "rtt: --max-attempts must be positive@.";
      124
    end
    else if workers <= 0 then begin
      Format.eprintf "rtt: --workers must be positive@.";
      124
    end
    else
      Supervisor.run
        {
          Supervisor.spool;
          budget;
          policy = fallback;
          max_attempts;
          deadline_fuel;
          checkpoint_every;
          seed;
          sleep = not no_sleep;
          verbose;
          workers;
          cache_dir;
        }
  in
  let info =
    Cmd.info "serve"
      ~doc:
        "Drain a spool directory through the engine, crash-safely: every state change is \
         journaled before it matters, interrupted solves resume from checkpoints, transient \
         failures retry with deterministic backoff. With $(b,--workers) N the drain fans out \
         over forked worker processes (same journal semantics, same outcomes); with \
         $(b,--cache-dir) duplicate instances are solved once and served from a \
         content-addressed cache. Exit 0 when drained, 31 when drained with permanently failed \
         jobs, 30 on SIGTERM/SIGINT."
  in
  Cmd.v info
    Term.(
      const run $ no_warmstart_arg $ spool_arg $ budget_arg $ fallback $ max_attempts
      $ deadline_fuel $ checkpoint_every $ seed_arg $ no_sleep $ verbose $ workers $ cache_dir)

let jobs_cmd =
  let run spool cache_dir json =
    (* a sharded daemon's spool is a directory of shard-<k> sub-spools,
       each with its own journal; the report is their union (jobs are
       partitioned by fingerprint, so no id appears twice) *)
    let shard_spools =
      match Sys.readdir spool with
      | exception Sys_error _ -> []
      | entries ->
          Array.to_list entries
          |> List.filter (fun d ->
                 String.length d > 6
                 && String.sub d 0 6 = "shard-"
                 && try Sys.is_directory (Filename.concat spool d) with Sys_error _ -> false)
          |> List.sort compare
          |> List.map (Filename.concat spool)
    in
    let spools = match shard_spools with [] -> [ spool ] | ds -> ds in
    if json then
      (* one Jobview object per job — the same serializer the daemon's
         `rtt status` answers with, so scripts parse one format *)
      List.iter
        (fun spool ->
          List.iter
            (fun (job, status) ->
              let id =
                let suffix = Rtt_service.Work.instance_suffix in
                if Filename.check_suffix job suffix then Filename.chop_suffix job suffix
                else job
              in
              print_endline (Rtt_service.Jobview.json_of ~id (Some status)))
            (Rtt_service.Supervisor.report ~spool))
        spools
    else begin
      List.iter
        (fun sp ->
          if List.length spools > 1 then Printf.printf "== %s ==\n" (Filename.basename sp);
          print_string (Rtt_service.Supervisor.render_report ~spool:sp))
        spools;
      match cache_dir with
      | Some dir -> Printf.printf "cache entries: %d\n" (Rtt_engine.Cache.entries ~dir)
      | None -> ()
    end;
    0
  in
  let spool_pos =
    let doc = "Spool directory: instance files ($(b,*.rtt)) plus the journal and sidecars." in
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR" ~doc)
  in
  let cache_dir =
    let doc = "Also report the entry count of this result cache directory." in
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let json =
    let doc =
      "Machine-readable output: one JSON object per job (id, state, attempts, fuel, cache_hit, \
       error) — the same rendering $(b,rtt status) returns for daemon jobs."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let info =
    Cmd.info "jobs"
      ~doc:
        "Report the journaled state of every job in a spool, including which completions were \
         served from the result cache."
  in
  Cmd.v info Term.(const run $ spool_pos $ cache_dir $ json)

(* ------------------------------------------------------------------ *)
(* daemon / submit / status                                            *)

let socket_arg =
  let doc = "Unix-domain socket the daemon listens on (or the client connects to)." in
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let daemon_cmd =
  let open Rtt_net in
  let listen =
    let doc = "Also listen on TCP $(docv) (e.g. 127.0.0.1:7421)." in
    Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"HOST:PORT" ~doc)
  in
  let queue =
    let doc = "Admission bound: jobs queued or in flight beyond this are shed with a \
               retry-after hint, never silently dropped."
    in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let max_frame =
    let doc = "Largest inbound protocol line in bytes; an overlong line poisons only the \
               offending connection."
    in
    Arg.(value & opt int (16 * 1024 * 1024) & info [ "max-frame" ] ~docv:"BYTES" ~doc)
  in
  let idle_timeout =
    let doc = "Per-connection read deadline in seconds (connections with unanswered waits \
               are exempt)."
    in
    Arg.(value & opt float 30.0 & info [ "idle-timeout" ] ~docv:"SEC" ~doc)
  in
  let workers =
    let doc = "Forked solver workers (same wire protocol and journal semantics as \
               $(b,rtt serve --workers))."
    in
    Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let fallback =
    let doc = "Fallback chain used for every job (default exact,bicriteria,greedy,baseline)." in
    Arg.(value & opt policy_conv Policy.default & info [ "fallback" ] ~docv:"CHAIN" ~doc)
  in
  let max_attempts =
    let doc = "Attempts per job before it is declared dead." in
    Arg.(value & opt int 3 & info [ "max-attempts" ] ~docv:"N" ~doc)
  in
  let deadline_fuel =
    let doc = "Per-attempt fuel deadline; a job that exhausts it fails transiently and is retried." in
    Arg.(value & opt (some fuel_conv) None & info [ "deadline-fuel" ] ~docv:"F" ~doc)
  in
  let cache_dir =
    let doc = "Content-addressed result cache directory; duplicate submissions are solved once." in
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Progress lines on stderr.") in
  let sync_replicas =
    let doc =
      "Hold each submission's accepted reply until $(docv) followers have durably applied its \
       journal record. 0 (the default) acknowledges as soon as the local fsync returns."
    in
    Arg.(value & opt int 0 & info [ "sync-replicas" ] ~docv:"K" ~doc)
  in
  let inject =
    let doc =
      "Arm a fault-injection site (repeatable), e.g. $(b,repl.frame-drop) to drop a shipped \
       replication frame (the follower must detect the gap and re-sync) — SITE[:AFTER] as in \
       $(b,rtt solve --inject)."
    in
    Arg.(value & opt_all inject_conv [] & info [ "inject" ] ~docv:"SITE[:AFTER]" ~doc)
  in
  let shards =
    let doc =
      "Fork $(docv) acceptor shards over the shared listening socket(s): each shard owns a \
       sub-spool (journal, workers, admission queue) keyed by instance fingerprint, and \
       requests arriving at a non-owner shard are relayed internally — duplicate coalescing \
       and exactly-once stay fleet-wide. 1 (the default) keeps the flat single-process \
       daemon. Incompatible with $(b,--sync-replicas)."
    in
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let run () spool socket listen queue max_frame idle_timeout workers fallback max_attempts
      deadline_fuel cache_dir budget seed verbose sync_replicas shards inject =
    let invalid msg =
      Format.eprintf "rtt: %s@." msg;
      124
    in
    let tcp =
      match listen with
      | None -> Ok None
      | Some hp -> (
          match Rtt_net.Client.endpoint_of_string hp with
          | Ok (Rtt_net.Client.Tcp (h, p)) -> Ok (Some (h, p))
          | Ok _ | Error _ -> Error (Printf.sprintf "--listen %s: expected HOST:PORT" hp))
    in
    match tcp with
    | Error msg -> invalid msg
    | Ok tcp ->
        if workers <= 0 then invalid "--workers must be positive"
        else if max_attempts <= 0 then invalid "--max-attempts must be positive"
        else if queue <= 0 then invalid "--queue must be positive"
        else if max_frame < 64 then invalid "--max-frame must be at least 64 bytes"
        else if sync_replicas < 0 then invalid "--sync-replicas must be non-negative"
        else if shards < 1 then invalid "--shards must be at least 1"
        else if shards > 1 && sync_replicas > 0 then
          invalid "--shards and --sync-replicas are incompatible (replication follows one journal writer; run --shards 1)"
        else begin
          Faults.reset ();
          List.iter (fun (site, after) -> Faults.arm ~after site) inject;
          Daemon.run
            {
              Daemon.service =
                {
                  (Rtt_service.Supervisor.default_config ~spool) with
                  budget;
                  policy = fallback;
                  max_attempts;
                  deadline_fuel;
                  seed;
                  verbose;
                  workers;
                  cache_dir;
                };
              socket_path = socket;
              tcp;
              queue_capacity = queue;
              max_frame;
              idle_timeout;
              sync_replicas;
              shards;
            }
        end
  in
  let info =
    Cmd.info "daemon"
      ~doc:
        "Serve the batch service over a socket: framed CRC-checked wire protocol, bounded \
         admission with shed/retry-after, duplicate coalescing by instance digest, and the \
         same crash-safe spool + journal + worker machinery as $(b,rtt serve) — an accepted \
         job survives $(b,kill -9) and is adopted by the next daemon on the same spool. First \
         SIGTERM drains (submissions shed, in-flight clients answered, exit 0/31); a second \
         forces checkpoint-and-abandon (exit 30). With $(b,--shards) N the daemon forks N \
         acceptor processes over the shared socket, each a complete daemon over its own \
         fingerprint-keyed sub-spool."
  in
  Cmd.v info
    Term.(
      const run $ no_warmstart_arg $ spool_arg $ socket_arg $ listen $ queue $ max_frame
      $ idle_timeout $ workers $ fallback $ max_attempts $ deadline_fuel $ cache_dir
      $ budget_arg $ seed_arg $ verbose $ sync_replicas $ shards $ inject)

let connect_attempts_arg =
  let doc =
    "Connection attempts before giving up (capped exponential backoff with deterministic \
     jitter between tries) — enough to ride out a failover window while a follower promotes."
  in
  Arg.(value & opt int 8 & info [ "connect-attempts" ] ~docv:"N" ~doc)

let with_client ?(attempts = 8) socket k =
  let open Rtt_net in
  match Client.endpoint_of_string socket with
  | Error msg ->
      Format.eprintf "rtt: %s@." msg;
      Client.exit_connect
  | Ok ep -> (
      match Client.connect_retry ~attempts ep with
      | Error e ->
          Format.eprintf "rtt: %s@." (Client.error_to_string e);
          Client.exit_connect
      | Ok c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> k c))

let report_client_error e =
  let open Rtt_net in
  Format.eprintf "rtt: %s@." (Client.error_to_string e);
  match e with Client.Timeout -> Client.exit_timeout | _ -> Client.exit_connect

(* Map a terminal daemon answer onto this process's exit code: a result
   prints exactly what `rtt solve` would have; a dead job exits with the
   engine code of its journaled error class (31 when the class is
   service-level, e.g. retries-exhausted). *)
let finish_terminal = function
  | Rtt_net.Protocol.Result { rendered; _ } ->
      print_string rendered;
      0
  | Rtt_net.Protocol.Failed { id; error_class; attempts } ->
      Format.eprintf "rtt: job %s failed permanently after %d attempt(s): %s@." id attempts
        error_class;
      Option.value
        (Error.exit_code_of_class error_class)
        ~default:Rtt_service.Supervisor.failed_jobs_exit_code
  | Rtt_net.Protocol.Errored { code = "unknown-job"; msg } ->
      Format.eprintf "rtt: unknown job %s@." msg;
      Rtt_net.Client.exit_unknown_job
  | Rtt_net.Protocol.Errored { code; msg } ->
      Format.eprintf "rtt: daemon error %s: %s@." code msg;
      Rtt_net.Client.exit_connect
  | _ ->
      Format.eprintf "rtt: unexpected daemon response@.";
      Rtt_net.Client.exit_connect

let submit_cmd =
  let open Rtt_net in
  let wait =
    let doc = "Block until the job reaches a terminal state and print the result (byte-identical \
               to a local $(b,rtt solve) of the same instance under the daemon's configuration)."
    in
    Arg.(value & flag & info [ "wait" ] ~doc)
  in
  let timeout =
    let doc = "Give up waiting after $(docv) seconds (exit 42)." in
    Arg.(value & opt float 60.0 & info [ "timeout" ] ~docv:"SEC" ~doc)
  in
  let name_arg =
    let doc = "Label for the daemon's log; defaults to the instance file name." in
    Arg.(value & opt (some string) None & info [ "name" ] ~docv:"NAME" ~doc)
  in
  let instance_opt =
    let doc = "Instance file (omit with $(b,--many))." in
    Arg.(value & pos 0 (some file) None & info [] ~docv:"INSTANCE" ~doc)
  in
  let many_arg =
    let doc =
      "Batch submit: $(docv) is a manifest of instance file paths, one per line ($(b,-) reads \
       the manifest from stdin; blank lines and $(b,#) comments are skipped). The whole batch \
       rides one pipelined round trip and is acknowledged per entry, in entry order."
    in
    Arg.(value & opt (some string) None & info [ "many" ] ~docv:"MANIFEST" ~doc)
  in
  let read_body path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (* batch path: one submit-many frame, n per-entry acks in order; with
     --wait, pipelined waits matched by id (completion order) *)
  let run_many manifest socket wait timeout name attempts =
    let manifest_lines =
      if manifest = "-" then (
        let acc = ref [] in
        (try
           while true do
             acc := input_line stdin :: !acc
           done
         with End_of_file -> ());
        List.rev !acc)
      else begin
        let ic = open_in manifest in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            let acc = ref [] in
            (try
               while true do
                 acc := input_line ic :: !acc
               done
             with End_of_file -> ());
            List.rev !acc)
      end
    in
    let paths =
      List.filter_map
        (fun l ->
          let l = String.trim l in
          if l = "" || l.[0] = '#' then None else Some l)
        manifest_lines
    in
    match List.map (fun p -> (p, read_body p)) paths with
    | exception Sys_error msg ->
        Format.eprintf "rtt: --many: %s@." msg;
        124
    | [] ->
        Format.eprintf "rtt: --many %s: no instance paths in manifest@." manifest;
        124
    | entries -> (
        let name =
          Option.value name
            ~default:(if manifest = "-" then "stdin" else Filename.basename manifest)
        in
        let bodies = List.map snd entries in
        with_client ~attempts socket @@ fun c ->
        match Client.send c (Protocol.Submit_many { name; bodies }) with
        | Error e -> report_client_error e
        | Ok () -> (
            let deadline = Unix.gettimeofday () +. timeout in
            let rec collect k acc =
              if k = 0 then Ok (List.rev acc)
              else
                match Client.recv ~deadline c with
                | Error e -> Error e
                | Ok r -> collect (k - 1) (r :: acc)
            in
            match collect (List.length bodies) [] with
            | Error e -> report_client_error e
            | Ok resps ->
                let accepted = ref [] and shed = ref 0 and rejected = ref None in
                List.iter2
                  (fun (path, _) resp ->
                    match resp with
                    | Protocol.Accepted { id } ->
                        Printf.printf "%s %s\n" path id;
                        if not (List.mem id !accepted) then accepted := id :: !accepted
                    | Protocol.Shed { retry_after_ms } ->
                        incr shed;
                        Format.eprintf "rtt: %s shed; retry in %d ms@." path retry_after_ms
                    | Protocol.Errored { code; msg } ->
                        if !rejected = None then rejected := Some code;
                        Format.eprintf "rtt: %s rejected (%s): %s@." path code msg
                    | _ ->
                        if !rejected = None then rejected := Some "bad-response";
                        Format.eprintf "rtt: %s: unexpected daemon response@." path)
                  entries resps;
                let submit_code =
                  match !rejected with
                  | Some code ->
                      Option.value (Error.exit_code_of_class code) ~default:Client.exit_connect
                  | None -> if !shed > 0 then Client.exit_shed else 0
                in
                if (not wait) || !accepted = [] then submit_code
                else begin
                  (* pipelined waits: answers arrive in completion
                     order, so match them by job id *)
                  let ids = List.rev !accepted in
                  let pending = Hashtbl.create 16 in
                  List.iter (fun id -> Hashtbl.replace pending id ()) ids;
                  let send_err =
                    List.fold_left
                      (fun acc id ->
                        match acc with
                        | Some _ -> acc
                        | None -> (
                            match Client.send c (Protocol.Wait { id }) with
                            | Ok () -> None
                            | Error e -> Some e))
                      None ids
                  in
                  match send_err with
                  | Some e -> report_client_error e
                  | None ->
                      let failure = ref None in
                      let settle id code =
                        if Hashtbl.mem pending id then begin
                          Hashtbl.remove pending id;
                          match code with
                          | None -> Printf.printf "%s done\n" id
                          | Some c ->
                              if !failure = None then failure := Some c;
                              Printf.printf "%s failed\n" id
                        end
                      in
                      let rec drain () =
                        if Hashtbl.length pending = 0 then
                          if submit_code <> 0 then submit_code
                          else Option.value !failure ~default:0
                        else
                          match Client.recv ~deadline c with
                          | Error e -> report_client_error e
                          | Ok (Protocol.Result { id; _ }) ->
                              settle id None;
                              drain ()
                          | Ok (Protocol.Failed { id; error_class; _ }) ->
                              settle id
                                (Some
                                   (Option.value
                                      (Error.exit_code_of_class error_class)
                                      ~default:Rtt_service.Supervisor.failed_jobs_exit_code));
                              drain ()
                          | Ok (Protocol.Errored { code = "unknown-job"; msg }) ->
                              settle msg (Some Client.exit_unknown_job);
                              drain ()
                          | Ok _ -> drain ()
                      in
                      drain ()
                end))
  in
  let run path socket wait timeout name attempts many =
    match (path, many) with
    | None, None ->
        Format.eprintf "rtt: an INSTANCE file (or --many MANIFEST) is required@.";
        124
    | Some _, Some _ ->
        Format.eprintf "rtt: INSTANCE and --many are mutually exclusive@.";
        124
    | None, Some manifest -> run_many manifest socket wait timeout name attempts
    | Some path, None ->
    let body = read_body path in
    let name = Option.value name ~default:(Filename.basename path) in
    (* a wait that survives the daemon dying under it: reconnect with
       backoff and re-send the wait — the journal makes the answer
       durable, so a promoted follower (or restarted daemon) on the
       same socket answers it truthfully *)
    let rec wait_loop ~deadline c id =
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0. then report_client_error Client.Timeout
      else
        match Client.request ~timeout:remaining c (Protocol.Wait { id }) with
        | Ok resp -> finish_terminal resp
        | Error Client.Timeout -> report_client_error Client.Timeout
        | Error e -> (
            Format.eprintf "rtt: connection lost (%s); reconnecting@."
              (Client.error_to_string e);
            match Client.endpoint_of_string socket with
            | Error _ -> report_client_error e
            | Ok ep -> (
                match Client.connect_retry ~attempts ep with
                | Error e -> report_client_error e
                | Ok c' ->
                    Fun.protect
                      ~finally:(fun () -> Client.close c')
                      (fun () -> wait_loop ~deadline c' id)))
    in
    with_client ~attempts socket @@ fun c ->
    match Client.request ~timeout c (Protocol.Submit { name; body }) with
    | Error e -> report_client_error e
    | Ok (Protocol.Shed { retry_after_ms }) ->
        Format.eprintf "rtt: submission shed; retry in %d ms@." retry_after_ms;
        Client.exit_shed
    | Ok (Protocol.Errored { code; msg }) ->
        Format.eprintf "rtt: rejected (%s): %s@." code msg;
        Option.value (Error.exit_code_of_class code) ~default:Client.exit_connect
    | Ok (Protocol.Accepted { id }) ->
        if not wait then begin
          print_endline id;
          0
        end
        else wait_loop ~deadline:(Unix.gettimeofday () +. timeout) c id
    | Ok _ ->
        Format.eprintf "rtt: unexpected daemon response@.";
        Client.exit_connect
  in
  let info =
    Cmd.info "submit"
      ~doc:
        "Submit an instance file to a running $(b,rtt daemon). Prints the durable job id (the \
         instance's content digest — duplicate submissions coalesce), or with $(b,--wait) \
         blocks for the result. Connections (and a $(b,--wait) interrupted by a failover) are \
         retried with backoff for up to $(b,--connect-attempts) tries. Exit codes: 0 success, \
         40 connect/protocol failure, 41 shed, 42 wait timeout; a permanently failed job exits \
         with its error class's engine code. With the daemon's $(b,--sync-replicas) K, the \
         accepted reply itself certifies the submission is durable on K followers. With \
         $(b,--many) MANIFEST, submits every listed instance in one pipelined batch — one \
         round trip, per-entry acks (and with $(b,--wait), one $(b,id done/failed) line per \
         distinct job)."
  in
  Cmd.v info
    Term.(
      const run $ instance_opt $ socket_arg $ wait $ timeout $ name_arg $ connect_attempts_arg
      $ many_arg)

let status_cmd =
  let open Rtt_net in
  let id_arg =
    let doc =
      "Job id as printed by $(b,rtt submit). When omitted, asks for the node's replication \
       stats instead (role, journal length, per-follower watermarks and lag)."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"JOB_ID" ~doc)
  in
  let run id socket attempts =
    with_client ~attempts socket @@ fun c ->
    match id with
    | None -> (
        match Client.request c Protocol.Stats with
        | Error e -> report_client_error e
        | Ok (Protocol.Stats_is { json }) ->
            print_endline json;
            0
        | Ok (Protocol.Errored { code; msg }) ->
            Format.eprintf "rtt: daemon error %s: %s@." code msg;
            Client.exit_connect
        | Ok _ ->
            Format.eprintf "rtt: unexpected daemon response@.";
            Client.exit_connect)
    | Some id -> (
        match Client.request c (Protocol.Status { id }) with
        | Error e -> report_client_error e
        | Ok (Protocol.Status_is { json; _ }) ->
            print_endline json;
            if
              (* state "unknown" is still printed, but signalled in the exit code *)
              let marker = {json|"state":"unknown"|json} in
              let rec contains i =
                i + String.length marker <= String.length json
                && (String.sub json i (String.length marker) = marker || contains (i + 1))
              in
              contains 0
            then Client.exit_unknown_job
            else 0
        | Ok (Protocol.Errored { code; msg }) ->
            Format.eprintf "rtt: daemon error %s: %s@." code msg;
            Client.exit_connect
        | Ok _ ->
            Format.eprintf "rtt: unexpected daemon response@.";
            Client.exit_connect)
  in
  let info =
    Cmd.info "status"
      ~doc:
        "Ask a running $(b,rtt daemon) (or $(b,rtt replica)) for one job's state as JSON (the \
         same object $(b,rtt jobs --json) prints from the spool), or — with no job id — for \
         the node's replication stats: role, journal length, per-follower sent/acked \
         watermarks and lag, and the depth of the $(b,--sync-replicas) gate. Exit 0, or 43 \
         when the daemon has no trace of the job."
  in
  Cmd.v info Term.(const run $ id_arg $ socket_arg $ connect_attempts_arg)

let session_cmd =
  let open Rtt_net in
  let action =
    let doc = "open | mutate | solve | close." in
    Arg.(
      required
      & pos 0
          (some (enum [ ("open", `Open); ("mutate", `Mutate); ("solve", `Solve); ("close", `Close) ]))
          None
      & info [] ~docv:"ACTION" ~doc)
  in
  let sid_arg =
    let doc = "Session id: 1-64 characters from [A-Za-z0-9._-]." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"SID" ~doc)
  in
  let rest =
    let doc =
      "For $(b,open): an optional instance file that seeds a fresh session. For $(b,mutate): \
       the mutation, unquoted — e.g. $(b,add-edge 0 3), $(b,set-budget 4), $(b,add-job 1:5 \
       2:2), $(b,set-duration-option 1 1:4), $(b,set-alpha 2/3), $(b,remove-job 2), or \
       $(b,seed) followed by an instance file."
    in
    Arg.(value & pos_right 1 string [] & info [] ~docv:"ARG" ~doc)
  in
  let timeout =
    let doc = "Give up after $(docv) seconds (exit 42)." in
    Arg.(value & opt float 60.0 & info [ "timeout" ] ~docv:"SEC" ~doc)
  in
  let read_body path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let run action sid rest socket timeout attempts =
    let usage msg =
      Format.eprintf "rtt: %s@." msg;
      124
    in
    let roundtrip req =
      with_client ~attempts socket @@ fun c ->
      match Client.request ~timeout c req with
      | Error e -> report_client_error e
      | Ok (Protocol.Session_ok { revision; _ }) ->
          Printf.printf "%s revision %d\n" sid revision;
          0
      | Ok (Protocol.Session_result { fuel; warm; rendered; _ }) ->
          (* the canonical answer on stdout (byte-identical to a cold
             solve); the per-solve cost on stderr where it cannot
             perturb a diff against one *)
          print_string rendered;
          Format.eprintf "fuel: %d steps (%s)@." fuel (if warm then "warm" else "cold");
          0
      | Ok (Protocol.Errored { code = "unknown-session"; msg }) ->
          Format.eprintf "rtt: unknown session %s@." msg;
          Client.exit_unknown_job
      | Ok (Protocol.Errored { code; msg }) ->
          Format.eprintf "rtt: daemon error %s: %s@." code msg;
          Option.value (Error.exit_code_of_class code) ~default:Client.exit_connect
      | Ok _ ->
          Format.eprintf "rtt: unexpected daemon response@.";
          Client.exit_connect
    in
    match action with
    | `Open -> (
        match rest with
        | [] -> roundtrip (Protocol.Session_open { sid; body = None })
        | [ path ] -> (
            match read_body path with
            | body -> roundtrip (Protocol.Session_open { sid; body = Some body })
            | exception Sys_error msg -> usage msg)
        | _ -> usage "session open takes at most one instance file")
    | `Mutate -> (
        match rest with
        | [] -> usage "session mutate needs a mutation, e.g. add-edge 0 3"
        | [ "seed"; path ] -> (
            (* the seed op carries a whole instance: accept a file path
               on the command line and escape it client-side *)
            match read_body path with
            | body ->
                roundtrip
                  (Protocol.Session_mutate
                     { sid; op = "seed " ^ Rtt_service.Frame.escape body })
            | exception Sys_error msg -> usage msg)
        | words -> roundtrip (Protocol.Session_mutate { sid; op = String.concat " " words }))
    | `Solve -> roundtrip (Protocol.Session_solve { sid })
    | `Close -> roundtrip (Protocol.Session_close { sid })
  in
  let info =
    Cmd.info "session"
      ~doc:
        "Drive a live session on a running $(b,rtt daemon): $(b,open) creates (or reattaches \
         to) a mutable instance, $(b,mutate) applies one validated, journaled mutation, \
         $(b,solve) re-solves warm from the previous answer (printing the canonical answer \
         text — byte-identical to a cold solve — on stdout and the fuel actually spent on \
         stderr), and $(b,close) discards the session. Every acknowledged mutation survives \
         $(b,kill -9): the daemon replays the session journal on reattach. Exit 0, 43 for an \
         unknown session, 40/42 for connection failures and timeouts."
  in
  Cmd.v info
    Term.(const run $ action $ sid_arg $ rest $ socket_arg $ timeout $ connect_attempts_arg)

let loadgen_cmd =
  let open Rtt_net in
  let clients =
    let doc = "Concurrent pipelined connections." in
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"C" ~doc)
  in
  let rate =
    let doc =
      "Offered load in jobs/sec across all connections, open-loop: the arrival schedule does \
       not slow down when the daemon does (no coordinated omission). 0 switches to \
       saturation mode: every connection is kept topped up to $(b,--depth) in-flight."
    in
    Arg.(value & opt float 0. & info [ "rate" ] ~docv:"JOBS/SEC" ~doc)
  in
  let depth =
    let doc = "Per-connection in-flight bound in saturation mode." in
    Arg.(value & opt int 32 & info [ "depth" ] ~docv:"N" ~doc)
  in
  let duration =
    let doc = "Measured seconds (after warmup)." in
    Arg.(value & opt float 10. & info [ "duration" ] ~docv:"SEC" ~doc)
  in
  let warmup =
    let doc = "Leading seconds excluded from the statistics." in
    Arg.(value & opt float 1. & info [ "warmup" ] ~docv:"SEC" ~doc)
  in
  let distinct =
    let doc =
      "Number of distinct generated instances cycled through (the daemon coalesces duplicate \
       fingerprints, so repeats of these measure the dedup/ack path, not fresh solves)."
    in
    Arg.(value & opt int 64 & info [ "distinct" ] ~docv:"N" ~doc)
  in
  let out =
    let doc = "Also write the JSON report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let run socket clients rate depth duration warmup distinct seed out =
    let invalid msg =
      Format.eprintf "rtt: %s@." msg;
      124
    in
    if clients < 1 then invalid "--clients must be positive"
    else if rate < 0. then invalid "--rate must be non-negative"
    else if depth < 1 then invalid "--depth must be positive"
    else if distinct < 1 then invalid "--distinct must be positive"
    else
      match Client.endpoint_of_string socket with
      | Error msg -> invalid msg
      | Ok endpoint -> (
          (* small hub instances, the bench workload shape: distinct
             seeds give distinct fingerprints, so shard routing spreads
             them and coalescing still gets exercised by the cycling *)
          let bodies =
            Array.init distinct (fun i ->
                let rng = Random.State.make [| seed + i |] in
                let g = Gen.layered rng ~layers:3 ~width:3 ~edge_prob:0.4 in
                Io.to_string (Problem.of_race_dag g Problem.Binary))
          in
          match
            Loadgen.run
              { Loadgen.endpoint; clients; rate; depth; duration; warmup; bodies }
          with
          | Error msg ->
              Format.eprintf "rtt: loadgen: %s@." msg;
              Client.exit_connect
          | Ok report ->
              let json = Loadgen.to_json report in
              print_endline json;
              (match out with
              | None -> ()
              | Some path -> Rtt_diskio.Diskio.atomic_write ~path (json ^ "\n"));
              if report.Loadgen.acked = 0 then Client.exit_connect else 0)
  in
  let info =
    Cmd.info "loadgen"
      ~doc:
        "Generate load against a running $(b,rtt daemon) and report throughput and latency \
         quantiles: $(b,--clients) concurrent pipelined connections submit generated \
         instances either open-loop at a fixed $(b,--rate) (latency under offered load, no \
         coordinated omission) or in saturation mode (peak jobs/sec), with ack latencies in \
         an HDR-style histogram. Prints one JSON object ($(b,rtt-loadgen/1)); \
         $(b,scripts/loadgen_gate.sh) turns it into a CI latency-SLO gate. Exit 0, or 40 if \
         nothing was acknowledged."
  in
  Cmd.v info
    Term.(
      const run $ socket_arg $ clients $ rate $ depth $ duration $ warmup $ distinct $ seed_arg
      $ out)

let replica_cmd =
  let open Rtt_net in
  let primary =
    let doc = "The primary to follow: a Unix-socket path or HOST:PORT." in
    Arg.(required & opt (some string) None & info [ "primary" ] ~docv:"ENDPOINT" ~doc)
  in
  let takeover_after =
    let doc =
      "Promote automatically once the primary link has been down $(docv) seconds. Without \
       this, only an explicit $(b,rtt promote) fails over."
    in
    Arg.(value & opt (some float) None & info [ "takeover-after" ] ~docv:"SEC" ~doc)
  in
  let cache_dir =
    let doc = "Where shipped cache entries land (and the cache served after promotion)." in
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let max_frame =
    let doc = "Largest inbound protocol line in bytes." in
    Arg.(value & opt int (16 * 1024 * 1024) & info [ "max-frame" ] ~docv:"BYTES" ~doc)
  in
  let workers =
    let doc = "Forked solver workers once promoted (as $(b,rtt daemon --workers))." in
    Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let fallback =
    let doc = "Fallback chain once promoted (default exact,bicriteria,greedy,baseline)." in
    Arg.(value & opt policy_conv Policy.default & info [ "fallback" ] ~docv:"CHAIN" ~doc)
  in
  let max_attempts =
    let doc = "Attempts per job before it is declared dead (once promoted)." in
    Arg.(value & opt int 3 & info [ "max-attempts" ] ~docv:"N" ~doc)
  in
  let deadline_fuel =
    let doc = "Per-attempt fuel deadline once promoted." in
    Arg.(value & opt (some fuel_conv) None & info [ "deadline-fuel" ] ~docv:"F" ~doc)
  in
  let queue =
    let doc = "Admission bound once promoted." in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let inject =
    let doc =
      "Arm a fault-injection site (repeatable), e.g. $(b,repl.ack-delay) to swallow one \
       per-frame acknowledgement — SITE[:AFTER] as in $(b,rtt solve --inject)."
    in
    Arg.(value & opt_all inject_conv [] & info [ "inject" ] ~docv:"SITE[:AFTER]" ~doc)
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Progress lines on stderr.") in
  let run () spool socket primary takeover_after cache_dir max_frame workers fallback
      max_attempts deadline_fuel queue budget seed inject verbose =
    match Client.endpoint_of_string primary with
    | Error msg ->
        Format.eprintf "rtt: --primary %s@." msg;
        124
    | Ok ep -> (
        Faults.reset ();
        List.iter (fun (site, after) -> Faults.arm ~after site) inject;
        let outcome =
          Standby.run
            {
              Standby.spool;
              socket_path = socket;
              primary = ep;
              cache_dir;
              max_frame;
              takeover_after;
              seed;
              verbose;
            }
        in
        match outcome with
        | Standby.Exit code -> code
        | Standby.Promote ->
            (* same spool, same socket: the startup replay is the claim
               replay, so a job the dead primary had started resumes at
               attempt + 1 — exactly once *)
            Daemon.run
              {
                Daemon.service =
                  {
                    (Rtt_service.Supervisor.default_config ~spool) with
                    budget;
                    policy = fallback;
                    max_attempts;
                    deadline_fuel;
                    seed;
                    verbose;
                    workers;
                    cache_dir;
                  };
                socket_path = socket;
                tcp = None;
                queue_capacity = queue;
                max_frame;
                idle_timeout = 30.0;
                sync_replicas = 0;
                shards = 1;
              })
  in
  let info =
    Cmd.info "replica"
      ~doc:
        "Follow a running $(b,rtt daemon) as a warm standby: replay its journal stream \
         frame-by-frame into a local spool (byte-for-byte identical at quiescence), \
         acknowledge with a durable watermark, and serve read-only $(b,status)/$(b,stats)/\
         terminal $(b,wait)s locally. On $(b,rtt promote) — or when the primary stays dead \
         past $(b,--takeover-after) — seals the journal, replays claims, and takes over as \
         the primary on the same socket with exactly-once semantics preserved."
  in
  Cmd.v info
    Term.(
      const run $ no_warmstart_arg $ spool_arg $ socket_arg $ primary $ takeover_after
      $ cache_dir $ max_frame $ workers $ fallback $ max_attempts $ deadline_fuel $ queue
      $ budget_arg $ seed_arg $ inject $ verbose)

let promote_cmd =
  let open Rtt_net in
  let run socket attempts =
    with_client ~attempts socket @@ fun c ->
    match Client.request c Protocol.Promote with
    | Error e -> report_client_error e
    | Ok Protocol.Promoting ->
        print_endline "promoting";
        0
    | Ok (Protocol.Errored { code; msg }) ->
        Format.eprintf "rtt: %s: %s@." code msg;
        Client.exit_connect
    | Ok _ ->
        Format.eprintf "rtt: unexpected response@.";
        Client.exit_connect
  in
  let info =
    Cmd.info "promote"
      ~doc:
        "Tell an $(b,rtt replica) (by its socket) to stop following and take over as primary: \
         it fsync-seals its journal tail, replays claims, and starts serving on its socket. \
         Sent to a primary this is refused with $(b,bad-role)."
  in
  Cmd.v info Term.(const run $ socket_arg $ connect_attempts_arg)

let fsck_cmd =
  let open Rtt_service in
  let spool_pos =
    let doc = "Spool directory to audit: instance files, journal, result/checkpoint sidecars." in
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR" ~doc)
  in
  let cache_dir =
    let doc = "Also audit this result cache directory (checksums, and quarantine on repair)." in
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let budget =
    let doc =
      "Enable the fingerprint audit: re-validate each cache entry reachable from a spool \
       instance against that instance under budget $(docv) (must match the daemon's \
       $(b,--budget) for the digests to line up)."
    in
    Arg.(value & opt (some int) None & info [ "b"; "budget" ] ~docv:"B" ~doc)
  in
  let fallback =
    let doc = "Fallback chain the fingerprint audit digests under (as the daemon's)." in
    Arg.(value & opt policy_conv Policy.default & info [ "fallback" ] ~docv:"CHAIN" ~doc)
  in
  let repair =
    let doc =
      "Fix what is fixable: seal the journal tail, delete corrupt cache entries, bad \
       checkpoints and tmp litter, and — with $(b,--from) — backfill missing records and \
       files from a live peer."
    in
    Arg.(value & flag & info [ "repair" ] ~doc)
  in
  let from =
    let doc =
      "A live primary or replica (Unix-socket path or HOST:PORT) to pull backfill findings \
       from over the replication protocol."
    in
    Arg.(value & opt (some string) None & info [ "from" ] ~docv:"ENDPOINT" ~doc)
  in
  let run spool cache_dir budget fallback repair from =
    let scan () = Fsck.scan ~spool ?cache_dir ?budget ~policy:fallback () in
    let report = scan () in
    print_string (Fsck.render report);
    if not (Fsck.dirty report) then Fsck.clean_exit_code
    else if not repair then Fsck.dirty_exit_code
    else begin
      let performed, remaining = Fsck.repair ~spool report in
      List.iter
        (fun f -> Printf.printf "repaired %s: %s\n" f.Fsck.code f.Fsck.file)
        performed;
      (* with a peer at hand, always catch up — a sealed journal that
         lost whole committed records looks locally self-consistent,
         so only the peer knows the tail is missing *)
      let pull_error =
        match (remaining, from) with
        | [], None -> None
        | _ :: _, None ->
            Some
              "backfill findings remain; pass --from ENDPOINT (a live primary or replica) \
               to pull them"
        | _, Some ep -> (
              match Rtt_net.Client.endpoint_of_string ep with
              | Error msg -> Some ("--from " ^ msg)
              | Ok ep -> (
                  let offer = if Fsck.offer_zero report then Some 0 else None in
                  match Rtt_net.Catchup.pull ~spool ?cache_dir ?offer ep with
                  | Ok p ->
                      Printf.printf
                        "backfilled %d record%s and %d attachment%s from a peer holding %d\n"
                        p.Rtt_net.Catchup.applied
                        (if p.Rtt_net.Catchup.applied = 1 then "" else "s")
                        p.Rtt_net.Catchup.attachments
                        (if p.Rtt_net.Catchup.attachments = 1 then "" else "s")
                        p.Rtt_net.Catchup.records;
                      None
                  | Error msg -> Some ("backfill failed: " ^ msg)))
      in
      (match pull_error with Some msg -> Printf.eprintf "rtt: %s\n%!" msg | None -> ());
      (* the verdict is a fresh audit, not bookkeeping: repaired means
         a rescan now comes back clean *)
      let after = scan () in
      if Fsck.dirty after then begin
        print_string (Fsck.render after);
        Fsck.dirty_exit_code
      end
      else Fsck.repaired_exit_code
    end
  in
  let info =
    Cmd.info "fsck"
      ~doc:
        "Audit a spool (and optionally its result cache) for every kind of damage a crash or \
         disk fault can leave: torn or truncated journal tails, stranded records, missing or \
         orphaned instance/result files, corrupt or stale checkpoint sidecars, \
         checksum-failing cache entries — and, with $(b,--budget), cache entries whose bytes \
         are intact but whose claim no longer validates against the instance. With \
         $(b,--repair), seals and deletes what is locally fixable and pulls the rest from a \
         live peer given by $(b,--from). Exit 0 when clean, 50 when damage remains, 51 when \
         damage was found and fully repaired."
  in
  Cmd.v info Term.(const run $ spool_pos $ cache_dir $ budget $ fallback $ repair $ from)

let chaos_cmd =
  let open Rtt_service in
  let seeds =
    let doc = "Number of seeded fault schedules to run, starting at $(b,--first-seed)." in
    Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"N" ~doc)
  in
  let first_seed =
    let doc = "First seed of the batch." in
    Arg.(value & opt int 1 & info [ "first-seed" ] ~docv:"S" ~doc)
  in
  let seed =
    let doc =
      "Run exactly this one seed (for replaying a reported failure) instead of a batch."
    in
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"S" ~doc)
  in
  let schedule =
    let parse s = Result.map_error (fun m -> `Msg m) (Chaos.schedule_of_string s) in
    let sched_conv =
      Arg.conv ~docv:"SITE:AFTER,..."
        (parse, fun fmt s -> Format.pp_print_string fmt (Chaos.schedule_to_string s))
    in
    let doc =
      "Override the seed-derived schedule with this exact one (requires $(b,--seed) for the \
       workload), e.g. $(b,disk.fsync-fail:3,engine.fuel-zero:0)."
    in
    Arg.(value & opt (some sched_conv) None & info [ "schedule" ] ~docv:"SITE:AFTER,..." ~doc)
  in
  let mode =
    let doc =
      "Workload: $(b,inproc) (supervisor drain in this process), $(b,nodes) (a real \
       primary/replica pair per run), or $(b,both) (inproc every seed, nodes every \
       $(b,--nodes-every)-th)."
    in
    Arg.(
      value
      & opt (enum [ ("inproc", `Inproc); ("nodes", `Nodes); ("both", `Both) ]) `Both
      & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let nodes_every =
    let doc = "In $(b,both) mode, run the (costlier) two-node workload every $(docv)-th seed." in
    Arg.(value & opt int 5 & info [ "nodes-every" ] ~docv:"K" ~doc)
  in
  let jobs =
    let doc = "Jobs per run (the last duplicates the first to exercise coalescing)." in
    Arg.(value & opt int 4 & info [ "jobs" ] ~docv:"K" ~doc)
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"One progress line per run on stderr.")
  in
  let run seeds first_seed seed schedule mode nodes_every jobs verbose =
    let rtt = Sys.executable_name in
    let log s = if verbose then Printf.eprintf "[chaos] %s\n%!" s in
    match (seed, schedule) with
    | None, Some _ ->
        Format.eprintf "rtt: --schedule needs --seed (the workload is generated from it)@.";
        124
    | Some seed, sched -> (
        (* single run, optionally with an explicit schedule — the
           replay path for a reported failure *)
        let mname = match mode with `Nodes -> "nodes" | _ -> "inproc" in
        let sched =
          match sched with
          | Some s -> s
          | None -> Chaos.schedule_of_seed ~nodes:(mname = "nodes") seed
        in
        log (Printf.sprintf "seed %d %s  [%s]" seed mname (Chaos.schedule_to_string sched));
        let check s =
          if mname = "nodes" then Chaos.run_nodes ~rtt ~jobs ~seed s
          else Chaos.run_inproc ~jobs ~seed s
        in
        match check sched with
        | Ok () ->
            Printf.printf "chaos: 1 run passed\n";
            0
        | Error reason ->
            let minimal, reason = Chaos.shrink ~check sched reason in
            print_string
              (Chaos.render_failure
                 { Chaos.seed = Some seed; mode = mname; schedule = minimal; reason });
            1)
    | None, None -> (
        match
          Chaos.run_seeds ~jobs ~nodes_every ~rtt ~log ~mode ~first:first_seed ~count:seeds ()
        with
        | Ok n ->
            Printf.printf "chaos: %d runs passed (seeds %d..%d)\n" n first_seed
              (first_seed + seeds - 1);
            0
        | Error f ->
            print_string (Chaos.render_failure f);
            1)
  in
  let info =
    Cmd.info "chaos"
      ~doc:
        "Deterministic chaos testing: derive a fault schedule from each seed (disk faults — \
         fsync/short-write/ENOSPC/EIO/rename — plus solver and replication faults, each armed \
         with a trigger count), drive a real workload under it (an in-process supervisor \
         drain, and periodically a live primary/replica pair), crash and recover as needed, \
         then check the durability invariants: the journal replays clean, every job reaches \
         exactly one terminal outcome, cache entries stay checksum-valid, replicas converge \
         byte-for-byte, and $(b,rtt fsck) finds nothing beyond benign crash residue. On \
         failure the schedule is shrunk to a local minimum and the seed printed for replay. \
         Exit 0 when every run passes, 1 on a failure."
  in
  Cmd.v info
    Term.(
      const run $ seeds $ first_seed $ seed $ schedule $ mode $ nodes_every $ jobs $ verbose)

let main =
  let doc = "Discrete resource-time tradeoff with resource reuse over paths (SPAA '19 reproduction)." in
  let info = Cmd.info "rtt" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ solve_cmd; exact_cmd; gen_cmd; sp_cmd; reduce_cmd; pareto_cmd; dot_cmd; demo_cmd; serve_cmd;
      jobs_cmd; daemon_cmd; submit_cmd; status_cmd; session_cmd; loadgen_cmd; replica_cmd;
      promote_cmd; fsck_cmd; chaos_cmd ]

let () = exit (Cmd.eval' main)
