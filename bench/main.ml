(* Benchmark harness: regenerates every table and figure of the paper
   (experiments E1-E15 of DESIGN.md) and runs Bechamel micro-benchmarks
   over the main algorithmic components (P1-P6).

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- E4 E8   -- run selected experiments
     dune exec bench/main.exe -- perf    -- only the perf benches

   Experiment sections print `paper:` (what the paper states) next to
   `measured:` (what this implementation produces); a final OK/SHAPE
   DIVERGES verdict per experiment makes regressions obvious. *)

open Rtt_dag
open Rtt_num
open Rtt_duration
open Rtt_core
open Rtt_engine
open Rtt_parsim
open Rtt_reductions

let failures = ref 0

(* Solves now go through the hardened engine, which threads a
   deterministic step counter through every rung; each experiment's
   verdict reports the fuel it burned so perf regressions show up as a
   diff in the transcript, not just as wall-clock noise. *)
let fuel = ref 0

(* --json: machine-readable per-section records, one JSON object per
   line (so CI can gate on a value with grep/sed, no JSON parser
   needed), written to BENCH_5.json alongside the human transcript. *)
let json_path = "BENCH_5.json"
let json_chan : out_channel option ref = ref None

type section_state = {
  sec_id : string;
  sec_title : string;
  started : float;
  pivots0 : int;
  warm_acc0 : int;
  warm_rej0 : int;
  factor0 : Rtt_lp.Simplex.factor_stats;
}

let current_section : section_state option ref = ref None

let begin_section id title =
  match !json_chan with
  | None -> ()
  | Some _ ->
      let warm_acc0, warm_rej0 = Rtt_lp.Simplex.warm_stats () in
      current_section :=
        Some
          {
            sec_id = id;
            sec_title = title;
            started = Unix.gettimeofday ();
            pivots0 = Rtt_lp.Simplex.pivot_count ();
            warm_acc0;
            warm_rej0;
            factor0 = Rtt_lp.Simplex.factor_stats ();
          }

let end_section id ok =
  match (!json_chan, !current_section) with
  | Some oc, Some s when s.sec_id = id ->
      let seconds = Unix.gettimeofday () -. s.started in
      let warm_acc, warm_rej = Rtt_lp.Simplex.warm_stats () in
      let f = Rtt_lp.Simplex.factor_stats () in
      let f0 = s.factor0 in
      let nnz = f.Rtt_lp.Simplex.nnz - f0.Rtt_lp.Simplex.nnz in
      let cells = f.Rtt_lp.Simplex.cells - f0.Rtt_lp.Simplex.cells in
      let quote = Jsonout.quote in
      (* The factorization counters are appended AFTER the original
         fields: scripts/bench_gate.sh extracts seconds/pivots with a
         sed whose pattern assumes the original prefix order. *)
      Printf.fprintf oc
        "{\"id\":%s,\"title\":%s,\"ok\":%b,\"seconds\":%.6f,\"fuel\":%d,\"pivots\":%d,\"warm_accepted\":%d,\"warm_rejected\":%d,\"refactors\":%d,\"etas\":%d,\"nnz\":%d,\"cells\":%d,\"density\":%.4f}\n"
        (quote id) (quote s.sec_title) ok seconds !fuel
        (Rtt_lp.Simplex.pivot_count () - s.pivots0)
        (warm_acc - s.warm_acc0) (warm_rej - s.warm_rej0)
        (f.Rtt_lp.Simplex.refactorizations - f0.Rtt_lp.Simplex.refactorizations)
        (f.Rtt_lp.Simplex.etas - f0.Rtt_lp.Simplex.etas)
        nnz cells
        (if cells = 0 then 0.0 else float_of_int nnz /. float_of_int cells);
      current_section := None
  | _ -> ()

let engine_run ?alpha p ~budget rung =
  match Engine.solve ?alpha ~policy:[ rung ] p ~budget with
  | Ok s ->
      fuel := !fuel + s.Engine.fuel_spent;
      s
  | Error e -> failwith (Printf.sprintf "engine (%s): %s" (Policy.rung_name rung) (Error.to_string e))

let engine_exact p ~budget = engine_run p ~budget Policy.Exact

let section id title =
  fuel := 0;
  begin_section id title;
  Format.printf "@.== %s: %s ==@." id title

let verdict id ok =
  if not ok then incr failures;
  Format.printf "[%s] %s (engine fuel_spent: %d)@." (if ok then "OK" else "SHAPE DIVERGES") id !fuel;
  end_section id ok

let rng_of seed = Random.State.make [| seed |]

(* random instance with general non-increasing step durations *)
let random_step_instance rng ~n =
  let g = Gen.erdos_renyi rng ~n ~edge_prob:0.4 in
  Problem.make g ~durations:(fun _ ->
      let base = 2 + Random.State.int rng 9 in
      let rec steps r t k acc =
        if k = 0 || t = 0 then List.rev acc
        else begin
          let r' = r + 1 + Random.State.int rng 3 in
          let t' = max 0 (t - 1 - Random.State.int rng 4) in
          if t' >= t then List.rev acc else steps r' t' (k - 1) ((r', t') :: acc)
        end
      in
      Duration.make ((0, base) :: steps 0 base (Random.State.int rng 3) []))

(* ------------------------------------------------------------------ *)
(* E1: Table 1 row 1 - (1/alpha, 1/(1-alpha)) bi-criteria             *)

let e1 () =
  section "E1" "Table 1 / general non-increasing: (1/a, 1/(1-a)) bi-criteria (Thm 3.4)";
  Format.printf "paper: makespan <= (1/a) OPT and resources <= 1/(1-a) x budget, for any 0 < a < 1@.";
  Format.printf "workload: 30 random DAG instances per alpha, n in [4,8], random step durations@.";
  let ok = ref true in
  Format.printf "%8s | %15s | %15s | %15s | %15s@." "alpha" "makespan bound" "worst measured"
    "resource bound" "worst measured";
  List.iter
    (fun (alpha, label) ->
      let worst_ms = ref Rat.zero and worst_rs = ref Rat.zero in
      for seed = 1 to 30 do
        let rng = rng_of (seed * 7919) in
        let n = 4 + Random.State.int rng 5 in
        let p = random_step_instance rng ~n in
        let budget = 1 + Random.State.int rng 6 in
        let s = engine_run ~alpha p ~budget Policy.Bicriteria in
        (* measured inflation ratios vs the LP lower bounds, read off the
           engine's validated certificate *)
        (match s.Engine.lp_makespan with
        | Some lp_ms when Rat.sign lp_ms > 0 ->
            worst_ms := Rat.max !worst_ms (Rat.div (Rat.of_int s.Engine.makespan) lp_ms)
        | Some _ -> ()
        | None -> ok := false);
        (match s.Engine.lp_budget with
        | Some lp_b when Rat.sign lp_b > 0 ->
            worst_rs := Rat.max !worst_rs (Rat.div (Rat.of_int s.Engine.budget_used) lp_b)
        | Some _ -> ()
        | None -> ok := false)
      done;
      Format.printf "%8s | %15s | %15.3f | %15s | %15.3f@." label
        (Rat.to_string (Rat.inv alpha))
        (Rat.to_float !worst_ms)
        (Rat.to_string (Rat.inv (Rat.sub Rat.one alpha)))
        (Rat.to_float !worst_rs);
      if Rat.(!worst_ms > Rat.inv alpha) then ok := false;
      if Rat.(!worst_rs > Rat.inv (Rat.sub Rat.one alpha)) then ok := false)
    [ (Rat.of_ints 1 4, "1/4"); (Rat.half, "1/2"); (Rat.of_ints 3 4, "3/4") ];
  verdict "E1" !ok

(* hub-heavy race DAG: chains feeding high-in-degree hubs, where the
   space-time tradeoff actually matters (random sparse DAGs have tiny
   in-degrees and reducers buy nothing) *)
let hub_instance rng ~hubs ~fan =
  let g = Dag.create () in
  let s = Dag.add_vertex ~label:"s" g in
  let prev = ref s in
  for _ = 1 to hubs do
    let hub = Dag.add_vertex g in
    let feeders = List.init (fan + Random.State.int rng fan) (fun _ -> Dag.add_vertex g) in
    List.iter
      (fun f ->
        Dag.add_edge g !prev f;
        Dag.add_edge g f hub)
      feeders;
    prev := hub
  done;
  let t = Dag.add_vertex ~label:"t" g in
  Dag.add_edge g !prev t;
  g

(* ------------------------------------------------------------------ *)
(* E2: Table 1 row 2 - binary splitting: 4-approx and (4/3, 14/5)     *)

let e2 () =
  section "E2" "Table 1 / recursive binary: 4-approx (Thm 3.10) and (4/3,14/5) bi-criteria (Thm 3.16)";
  Format.printf "paper: makespan <= 4 OPT within budget; or <= (14/5) OPT using <= (4/3) resources@.";
  Format.printf "workload: 40 race DAGs (sparse random + hub-heavy), binary-split durations, OPT by brute force@.";
  let worst4 = ref 0.0 and worst_bb_ms = ref 0.0 and worst_bb_rs = ref 0.0 in
  let ok = ref true in
  for seed = 1 to 40 do
    let rng = rng_of (seed * 104729) in
    let g =
      if seed mod 2 = 0 then Gen.erdos_renyi rng ~n:(4 + Random.State.int rng 4) ~edge_prob:0.4
      else hub_instance rng ~hubs:(1 + Random.State.int rng 2) ~fan:(6 + Random.State.int rng 6)
    in
    let p = Problem.of_race_dag g Problem.Binary in
    let budget = 1 + Random.State.int rng 8 in
    let opt = engine_exact p ~budget in
    let a4 = Binary_approx.min_makespan p ~budget in
    if a4.Binary_approx.budget_used > budget then ok := false;
    if opt.Engine.makespan > 0 then
      worst4 := max !worst4 (float_of_int a4.Binary_approx.makespan /. float_of_int opt.Engine.makespan);
    if a4.Binary_approx.makespan > 4 * opt.Engine.makespan then ok := false;
    let bb = Binary_bicriteria.min_makespan p ~budget in
    if not (Binary_bicriteria.satisfies_guarantees bb) then ok := false;
    if opt.Engine.makespan > 0 then
      worst_bb_ms :=
        max !worst_bb_ms (float_of_int bb.Binary_bicriteria.makespan /. float_of_int opt.Engine.makespan);
    if budget > 0 then
      worst_bb_rs :=
        max !worst_bb_rs (float_of_int bb.Binary_bicriteria.budget_used /. float_of_int budget)
  done;
  Format.printf "measured: worst makespan/OPT of 4-approx      = %.3f (bound 4)@." !worst4;
  Format.printf "measured: worst makespan/OPT of (4/3,14/5)    = %.3f (bound 2.8)@." !worst_bb_ms;
  Format.printf "measured: worst resources/B  of (4/3,14/5)    = %.3f (bound 1.333)@." !worst_bb_rs;
  verdict "E2" (!ok && !worst4 <= 4.0 && !worst_bb_rs <= (4.0 /. 3.0) +. 1e-9)

(* ------------------------------------------------------------------ *)
(* E3: Table 1 row 3 - k-way splitting: 5-approx                      *)

let e3 () =
  section "E3" "Table 1 / k-way splitting: 5-approximation (Thm 3.9)";
  Format.printf "paper: makespan <= 5 OPT with resources within budget@.";
  Format.printf "workload: 40 race DAGs (sparse random + hub-heavy), k-way durations, OPT by brute force@.";
  let worst = ref 0.0 and ok = ref true in
  for seed = 1 to 40 do
    let rng = rng_of (seed * 65537) in
    let g =
      if seed mod 2 = 0 then Gen.erdos_renyi rng ~n:(4 + Random.State.int rng 4) ~edge_prob:0.4
      else hub_instance rng ~hubs:(1 + Random.State.int rng 2) ~fan:(6 + Random.State.int rng 6)
    in
    let p = Problem.of_race_dag g Problem.Kway in
    let budget = 1 + Random.State.int rng 8 in
    let opt = engine_exact p ~budget in
    let a = Kway_approx.min_makespan p ~budget in
    if a.Kway_approx.budget_used > budget then ok := false;
    if opt.Engine.makespan > 0 then
      worst := max !worst (float_of_int a.Kway_approx.makespan /. float_of_int opt.Engine.makespan);
    if a.Kway_approx.makespan > 5 * opt.Engine.makespan then ok := false
  done;
  Format.printf "measured: worst makespan/OPT = %.3f (bound 5)@." !worst;
  verdict "E3" (!ok && !worst <= 5.0)

(* ------------------------------------------------------------------ *)
(* E4: Table 2 - clause gadget line times (Section 4.1)               *)

let e4 () =
  section "E4" "Table 2: times at C5/C6/C7 for all truth assignments (Section 4.1 gadget)";
  Format.printf "paper: the satisfied pattern line sits at 0, every other line at 1;@.";
  Format.printf "       exactly-one-true rows are the only rows with a 0 entry@.";
  let f = Sat.make ~n_vars:3 [ [ (0, true); (1, true); (2, true) ] ] in
  let red = Gadget_general.reduce f in
  let inst = red.Gadget_general.instance in
  let ok = ref true in
  Format.printf "%6s | %4s %4s %4s | paper (C5 C6 C7)@." "ViVjVk" "C5" "C6" "C7";
  for mask = 0 to 7 do
    let a = Array.init 3 (fun i -> mask land (1 lsl i) <> 0) in
    let alloc = Gadget_general.allocation_of_assignment red a in
    let finish = Schedule.finish_times inst.Aoa.problem alloc in
    let c5, c6, c7 = red.Gadget_general.clause_line_nodes.(0) in
    let tv n = finish.(inst.Aoa.node_vertex.(n)) in
    (* paper's Table 2 entry: 0 iff the line's pattern matches *)
    let v i = a.(i) in
    let paper =
      [
        (if (not (v 0)) && (not (v 1)) && v 2 then 0 else 1);
        (if (not (v 0)) && v 1 && not (v 2) then 0 else 1);
        (if v 0 && (not (v 1)) && not (v 2) then 0 else 1);
      ]
    in
    let got = [ tv c5; tv c6; tv c7 ] in
    if got <> paper then ok := false;
    Format.printf "%c%c%c    | %4d %4d %4d | %d %d %d@."
      (if a.(0) then 'T' else 'F')
      (if a.(1) then 'T' else 'F')
      (if a.(2) then 'T' else 'F')
      (List.nth got 0) (List.nth got 1) (List.nth got 2) (List.nth paper 0) (List.nth paper 1)
      (List.nth paper 2)
  done;
  verdict "E4" !ok

(* ------------------------------------------------------------------ *)
(* E5: Table 3 - splitting clause gadget finish times (Section 4.2)   *)

let e5 () =
  section "E5" "Table 3: earliest finish at C5/C6/C7 with a = 6x+4, b = 5x+6 (Section 4.2 gadget)";
  let f = Sat.make ~n_vars:3 [ [ (0, true); (1, true); (2, true) ] ] in
  let red = Gadget_split.reduce f in
  let x = red.Gadget_split.x in
  let a_const = (6 * x) + 4 and b_const = (5 * x) + 6 in
  Format.printf "paper: x = %d, a = 6x+4 = %d, b = 5x+6 = %d@." x a_const b_const;
  let expect = function
    | true, true, true -> (a_const + 1, a_const + 1, a_const + 1)
    | false, true, true -> (a_const, a_const, a_const + 2)
    | true, false, true -> (a_const, a_const + 2, a_const)
    | true, true, false -> (a_const + 2, a_const, a_const)
    | false, false, true -> (b_const + 2, a_const + 1, a_const + 1)
    | false, true, false -> (a_const + 1, b_const + 2, a_const + 1)
    | true, false, false -> (a_const + 1, a_const + 1, b_const + 2)
    | false, false, false -> (a_const, a_const, a_const)
  in
  let ok = ref true in
  Format.printf "%6s | %16s | %16s@." "ViVjVk" "measured" "Table 3";
  for mask = 0 to 7 do
    let assignment = Array.init 3 (fun i -> mask land (1 lsl i) <> 0) in
    let g5, g6, g7 = Gadget_split.line_finish_times red ~clause:0 assignment in
    let w5, w6, w7 = expect (assignment.(0), assignment.(1), assignment.(2)) in
    if (g5, g6, g7) <> (w5, w6, w7) then ok := false;
    Format.printf "%c%c%c    | %4d %4d %4d | %4d %4d %4d@."
      (if assignment.(0) then 'T' else 'F')
      (if assignment.(1) then 'T' else 'F')
      (if assignment.(2) then 'T' else 'F')
      g5 g6 g7 w5 w6 w7
  done;
  verdict "E5" !ok

(* ------------------------------------------------------------------ *)
(* E6: Figure 2 - binary reducer timing                               *)

let e6 () =
  section "E6" "Figure 2: recursive binary reducer, n updates with height h";
  Format.printf "paper: a reducer of height h applies n parallel updates in ceil(n/2^h) + h + 1 time@.";
  let ok = ref true in
  Format.printf "%6s | %3s | %10s | %10s@." "n" "h" "simulated" "formula";
  List.iter
    (fun n ->
      List.iter
        (fun h ->
          let arrivals = List.init n (fun _ -> 0) in
          let sim = Reducer_sim.finish_time ~arrivals (Reducer_sim.Binary { height = h }) in
          let formula = ((n + (1 lsl h) - 1) / (1 lsl h)) + h + 1 in
          if sim <> formula then ok := false;
          Format.printf "%6d | %3d | %10d | %10d@." n h sim formula)
        [ 1; 2; 3; 4 ])
    [ 64; 256; 1024 ];
  verdict "E6" !ok

(* ------------------------------------------------------------------ *)
(* E7: Figure 3 - Parallel-MM space-time tradeoff                     *)

let e7 () =
  section "E7" "Figure 3 / Section 1: Parallel-MM with reducers of height h";
  Format.printf "paper: running time Theta(n/2^h + h) with n^2 2^h extra space;@.";
  Format.printf "       h=1 almost halves the time, h=log2 n reaches Theta(log n)@.";
  let ok = ref true in
  List.iter
    (fun n ->
      let serial = Matmul.serial_span ~n in
      let h1 = Matmul.span ~n ~height:1 in
      let logn = int_of_float (Float.log2 (float_of_int n)) in
      let hfull = Matmul.span ~n ~height:logn in
      Format.printf "n=%4d: serial %4d | h=1 -> %4d (space %8d) | h=log n -> %3d (space %10d)@." n
        serial h1
        (Matmul.extra_space ~n ~height:1)
        hfull
        (Matmul.extra_space ~n ~height:logn);
      if h1 > (n / 2) + 2 then ok := false;
      if hfull > (2 * logn) + 2 then ok := false)
    [ 16; 32; 64; 256 ];
  verdict "E7" !ok

(* ------------------------------------------------------------------ *)
(* E8: Figures 4-5 - the makespan 11 -> 10 example                    *)

let fig45 () =
  let g = Dag.create () in
  let s = Dag.add_vertex ~label:"s" g in
  let a = Dag.add_vertex ~label:"a" g in
  let b = Dag.add_vertex ~label:"b" g in
  let c = Dag.add_vertex ~label:"c" g in
  let d = Dag.add_vertex ~label:"d" g in
  let t = Dag.add_vertex ~label:"t" g in
  let xs = List.init 5 (fun i -> Dag.add_vertex ~label:(Printf.sprintf "x%d" i) g) in
  Dag.add_edge g s a;
  Dag.add_edge g a b;
  Dag.add_edge g b c;
  List.iter
    (fun x ->
      Dag.add_edge g s x;
      Dag.add_edge g x c)
    xs;
  Dag.add_edge g c d;
  Dag.add_edge g (List.hd xs) d;
  Dag.add_edge g d t;
  g

let e8 () =
  section "E8" "Figures 4-5: work = in-degree, a height-1 reducer at c drops 11 to 10";
  Format.printf "paper: makespan 11 via s->a->b->c->d->t; with a 2-unit reducer at c it becomes 10@.";
  let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
  let ms0, path = Schedule.critical_path p (Schedule.zero_allocation p) in
  let name v = Option.value ~default:(string_of_int v) (Dag.label p.Problem.dag v) in
  Format.printf "measured: makespan %d along %s@." ms0 (String.concat "->" (List.map name path));
  let r = engine_exact p ~budget:2 in
  Format.printf "measured: with budget 2 the optimum is %d (allocation at %s)@." r.Engine.makespan
    (String.concat ","
       (List.filter_map
          (fun v -> if r.Engine.allocation.(v) > 0 then Some (name v) else None)
          (Dag.vertices p.Problem.dag)));
  verdict "E8" (ms0 = 11 && r.Engine.makespan = 10)

(* ------------------------------------------------------------------ *)
(* E9: Figures 8-9 - general-duration SAT reduction                   *)

let e9 () =
  section "E9" "Figures 8-9 / Lemma 4.2: 1-in-3SAT reduction with general durations";
  Format.printf "paper: makespan 1 with budget n+2m iff 1-in-3 satisfiable; else >= 2 (Thm 4.3)@.";
  let f = Sat.example_paper in
  let red = Gadget_general.reduce f in
  Format.printf "formula (Fig. 9): %a, budget %d@." Sat.pp f red.Gadget_general.budget;
  let yes = Gadget_general.decide_by_assignments red <> None in
  Format.printf "measured: reduction says %s, SAT oracle says %b@."
    (if yes then "YES" else "NO")
    (Sat.solve f <> None);
  let agree = ref (yes = (Sat.solve f <> None)) in
  let rng = rng_of 4242 in
  let total = 25 in
  let matches = ref 0 in
  for _ = 1 to total do
    let fr = Sat.random rng ~n_vars:3 ~n_clauses:(1 + Random.State.int rng 3) in
    let rr = Gadget_general.reduce fr in
    let want = Sat.solve fr <> None in
    let got = Gadget_general.decide_by_assignments rr <> None in
    if want = got then incr matches else agree := false
  done;
  Format.printf "measured: %d/%d random formulas decided identically to the SAT oracle@." !matches total;
  verdict "E9" !agree

(* ------------------------------------------------------------------ *)
(* E10: Figures 12-14 - splitting-function SAT reduction              *)

let e10 () =
  section "E10" "Figures 12-14 / Lemma 4.5: reduction with binary/k-way splitting durations";
  let f = Sat.example_paper in
  let red = Gadget_split.reduce f in
  Format.printf
    "paper: makespan 7x+2y+12 (= %d) with budget 2n+4m (= %d) iff satisfiable; x=%d, y=%d@."
    red.Gadget_split.paper_target red.Gadget_split.budget red.Gadget_split.x red.Gadget_split.y;
  Format.printf "measured: exact simulated target %d (uneven combining tree accounts for %d)@."
    red.Gadget_split.target
    (red.Gadget_split.paper_target - red.Gadget_split.target);
  let sat_a = [| false; false; false |] in
  let ms = Gadget_split.makespan_of_assignment red sat_a in
  let bu = Gadget_split.budget_of_assignment red sat_a in
  Format.printf "measured: satisfying assignment -> makespan %d, min-flow %d@." ms bu;
  let bad = [| true; true; true |] in
  let ms_bad = Gadget_split.makespan_of_assignment red bad in
  Format.printf "measured: violating assignment -> makespan %d (> target)@." ms_bad;
  verdict "E10"
    (ms = red.Gadget_split.target
    && bu <= red.Gadget_split.budget
    && ms_bad > red.Gadget_split.target
    && abs (red.Gadget_split.paper_target - red.Gadget_split.target) <= 1)

(* ------------------------------------------------------------------ *)
(* E11: Figures 15-16 - Partition on bounded treewidth                *)

let e11 () =
  section "E11" "Figures 15-16 / Theorem 4.6: Partition reduction, treewidth <= 15";
  Format.printf "paper: makespan B/2 with budget B iff the items partition; decomposition width 15@.";
  let items = [| 3; 1; 1; 2; 2; 1 |] in
  let red = Partition_red.reduce items in
  let td = Partition_red.tree_decomposition red in
  Format.printf "items [3;1;1;2;2;1]: budget %d, target %d, decomposition width %d (valid %b)@."
    red.Partition_red.budget red.Partition_red.target (Treewidth.width td)
    (Treewidth.is_valid red.Partition_red.instance.Problem.dag td);
  let heur = Treewidth.min_degree_heuristic red.Partition_red.instance.Problem.dag in
  Format.printf "measured: independent min-degree heuristic finds width %d (valid %b)@."
    (Treewidth.width heur)
    (Treewidth.is_valid red.Partition_red.instance.Problem.dag heur);
  let rng = rng_of 99 in
  let total = 25 and matches = ref 0 in
  for _ = 1 to total do
    let n = 3 + Random.State.int rng 3 in
    let its = Array.init n (fun _ -> 1 + Random.State.int rng 6) in
    let r = Partition_red.reduce its in
    if Partition_red.partition_exists its = (Partition_red.decide_by_subsets r <> None) then
      incr matches
  done;
  Format.printf "measured: %d/%d random Partition instances decided identically to the oracle@." !matches
    total;
  verdict "E11"
    (!matches = total
    && Treewidth.width td <= 15
    && Treewidth.is_valid red.Partition_red.instance.Problem.dag td)

(* ------------------------------------------------------------------ *)
(* E12: Figures 17-18 - numerical 3D matching                         *)

let e12 () =
  section "E12" "Figures 17-18 / Lemma A.1: numerical 3-D matching reduction";
  Format.printf "paper: makespan 2M+T with budget n^2 iff a perfect matching exists@.";
  let a = [| 1; 2 |] and b = [| 2; 3 |] and c = [| 4; 2 |] in
  let red = N3dm_red.reduce ~a ~b ~c in
  Format.printf "A=[1;2] B=[2;3] C=[4;2]: T=%d, M=%d, target=%d, budget=%d@." (N3dm_red.triple_sum red)
    (N3dm_red.big red) (N3dm_red.target red) (N3dm_red.budget red);
  let first_ok =
    match N3dm_red.decide_by_matchings red with
    | Some (p, q) ->
        let ms = N3dm_red.makespan_of_matching red ~p ~q in
        Format.printf "measured: matching found, makespan %d@." ms;
        ms = N3dm_red.target red
    | None ->
        Format.printf "measured: no matching (unexpected)@.";
        false
  in
  let rng = rng_of 555 in
  let total = 10 and matches = ref 0 and tried = ref 0 in
  while !tried < total do
    let n = 2 + Random.State.int rng 2 in
    let mk () = Array.init n (fun _ -> 1 + Random.State.int rng 4) in
    let a = mk () and b = mk () and c = mk () in
    let tot = Array.fold_left ( + ) 0 (Array.concat [ a; b; c ]) in
    if tot mod n = 0 then begin
      incr tried;
      let r = N3dm_red.reduce ~a ~b ~c in
      if (N3dm_red.n3dm_exists ~a ~b ~c <> None) = (N3dm_red.decide_by_matchings r <> None) then
        incr matches
    end
  done;
  Format.printf "measured: %d/%d random N3DM instances decided identically to the oracle@." !matches
    total;
  verdict "E12" (first_ok && !matches = total)

(* ------------------------------------------------------------------ *)
(* E13: Section 3.4 - series-parallel DP                              *)

let e13 () =
  section "E13" "Section 3.4: exact series-parallel DP, correctness and O(m B^2) scaling";
  Format.printf "paper: pseudo-polynomial exact algorithm, O(m B^2) time@.";
  let rng = rng_of 31337 in
  let total = 20 and matches = ref 0 in
  for _ = 1 to total do
    let leaves = 2 + Random.State.int rng 5 in
    let tree =
      Sp.map
        (fun _ -> Binary_split.to_duration ~work:(2 + Random.State.int rng 15))
        (Gen.random_sp rng ~leaves ~series_bias:0.5)
    in
    let budget = Random.State.int rng 7 in
    let ms, _ = Sp_exact.min_makespan tree ~budget in
    let g, jobs = Sp.to_dag tree in
    let p = Problem.make g ~durations:(fun v -> jobs.(v)) in
    if ms = (engine_exact p ~budget).Engine.makespan then incr matches
  done;
  Format.printf "measured: DP = brute-force optimum on %d/%d random SP instances@." !matches total;
  (* timing scaling in B at fixed m *)
  let tree =
    Sp.map
      (fun _ -> Binary_split.to_duration ~work:(5 + Random.State.int rng 40))
      (Gen.random_sp rng ~leaves:60 ~series_bias:0.5)
  in
  let time_for budget =
    let t0 = Sys.time () in
    ignore (Sp_exact.makespan_table tree ~budget);
    Sys.time () -. t0
  in
  ignore (time_for 50);
  let t100 = time_for 100 and t200 = time_for 200 and t400 = time_for 400 in
  Format.printf "measured: m=60 leaves, time B=100: %.4fs, B=200: %.4fs, B=400: %.4fs@." t100 t200 t400;
  let r1 = t200 /. max 1e-9 t100 and r2 = t400 /. max 1e-9 t200 in
  Format.printf "measured: doubling B scales time by %.2fx then %.2fx (theory: ~4x)@." r1 r2;
  (* scaling in m at fixed B *)
  let time_m leaves =
    let tree =
      Sp.map
        (fun _ -> Binary_split.to_duration ~work:(5 + Random.State.int rng 40))
        (Gen.random_sp rng ~leaves ~series_bias:0.5)
    in
    let t0 = Sys.time () in
    ignore (Sp_exact.makespan_table tree ~budget:150);
    Sys.time () -. t0
  in
  ignore (time_m 20);
  let m40 = time_m 40 and m80 = time_m 80 and m160 = time_m 160 in
  let rm = m160 /. max 1e-9 m80 in
  Format.printf "measured: B=150, time m=40: %.4fs, m=80: %.4fs, m=160: %.4fs (doubling m scales by %.2fx, theory ~2x)@."
    m40 m80 m160 rm;
  verdict "E13" (!matches = total && r2 > 1.5 && r2 < 16.0 && rm > 1.2 && rm < 8.0)

(* ------------------------------------------------------------------ *)
(* E14: alpha sweep of the rounding machinery                         *)

let e14 () =
  section "E14" "Section 3.1 rounding: alpha sweep on one instance";
  Format.printf "paper: rounding trades duration inflation (1/a) against resource inflation (1/(1-a))@.";
  let rng = rng_of 2024 in
  let p = random_step_instance rng ~n:8 in
  let budget = 4 in
  let tr = Transform.of_problem p in
  let lp = Lp_relax.min_makespan tr ~budget in
  Format.printf "instance: %d jobs, budget %d, LP makespan %s, LP budget %s@." (Problem.n_jobs p) budget
    (Rat.to_string lp.Lp_relax.makespan)
    (Rat.to_string lp.Lp_relax.budget_used);
  Format.printf "%8s | %16s | %16s@." "alpha" "rounded makespan" "resources used";
  let ok = ref true in
  List.iter
    (fun (num, den) ->
      let alpha = Rat.of_ints num den in
      let r = Rounding.round tr ~alpha lp in
      Format.printf "%5d/%-2d | %16d | %16d@." num den r.Rounding.makespan r.Rounding.budget_used;
      if Rat.(Rat.of_int r.Rounding.makespan > Rat.div lp.Lp_relax.makespan alpha) then ok := false;
      if
        Rat.(
          Rat.of_int r.Rounding.budget_used > Rat.div lp.Lp_relax.budget_used (Rat.sub Rat.one alpha))
      then ok := false)
    [ (1, 10); (1, 4); (1, 2); (3, 4); (9, 10) ];
  verdict "E14" !ok

(* ------------------------------------------------------------------ *)
(* E15: Figures 10-11 - minimum-resource inapproximability            *)

let e15 () =
  section "E15" "Figures 10-11 / Theorem 4.4: minimum-resource 2 vs 3 gap";
  Format.printf "paper: 2 units suffice iff satisfiable, else 3 are needed => no < 3/2 approximation@.";
  let f = Sat.example_paper in
  let red = Minresource_red.reduce f in
  Format.printf "satisfiable formula: min units measured %d (target makespan %d)@."
    (Minresource_red.min_units red) red.Minresource_red.target;
  let unsat = Sat.make ~n_vars:3 [ [ (0, true); (0, true); (0, true) ] ] in
  let red2 = Minresource_red.reduce unsat in
  Format.printf "unsatisfiable formula: min units measured %d@." (Minresource_red.min_units red2);
  let rng = rng_of 808 in
  let total = 20 and matches = ref 0 in
  for _ = 1 to total do
    let fr =
      Sat.random rng ~n_vars:(3 + Random.State.int rng 2) ~n_clauses:(1 + Random.State.int rng 3)
    in
    let rr = Minresource_red.reduce fr in
    let want = if Sat.solve fr <> None then 2 else 3 in
    if Minresource_red.min_units rr = want then incr matches
  done;
  Format.printf "measured: %d/%d random formulas give the expected 2-vs-3 answer@." !matches total;
  verdict "E15"
    (Minresource_red.min_units red = 2 && Minresource_red.min_units red2 = 3 && !matches = total)

(* ------------------------------------------------------------------ *)
(* E16: large-DAG LP relaxation - sparse vs dense engine              *)

let e16 () =
  section "E16" "Large layered DAG: revised simplex vs dense tableau on the makespan LP";
  Format.printf
    "claim: the LP relaxation's constraint matrix is sparse (a few nonzeros per row), so the@.";
  Format.printf
    "       revised engine's eta-file factorization beats the dense tableau by >= 3x wall time@.";
  Format.printf "       while producing bit-identical answers (same Bland pivots, exact rationals).@.";
  let g = Gen.layered (rng_of 1616) ~layers:16 ~width:9 ~edge_prob:0.35 in
  let p = Problem.of_race_dag g Problem.Binary in
  let tr = Transform.of_problem p in
  let vars, constrs = Lp_relax.dimensions tr in
  Format.printf "instance: %d jobs -> LP with %d variables, %d constraints@." (Problem.n_jobs p)
    vars constrs;
  let budgets = [ 2; 5; 9 ] in
  (* pure engine comparison: the float warm-start advisor would hand
     both engines the same crash basis, which only masks the tableau
     work we are measuring *)
  let warm0 = !Rtt_lp.Simplex.warmstart_enabled in
  Rtt_lp.Simplex.warmstart_enabled := false;
  let engine0 = !Rtt_lp.Simplex.engine in
  let run eng =
    Rtt_lp.Simplex.engine := eng;
    let t0 = Unix.gettimeofday () in
    let sols = List.map (fun b -> Lp_relax.min_makespan tr ~budget:b) budgets in
    let dt = Unix.gettimeofday () -. t0 in
    (sols, dt)
  in
  let pivots_before eng =
    Rtt_lp.Simplex.engine := eng;
    Rtt_lp.Simplex.pivot_count ()
  in
  let sp0 = pivots_before Rtt_lp.Simplex.Sparse in
  let sparse_sols, sparse_t = run Rtt_lp.Simplex.Sparse in
  let sparse_pivots = Rtt_lp.Simplex.pivot_count () - sp0 in
  let dn0 = pivots_before Rtt_lp.Simplex.Dense in
  let dense_sols, dense_t = run Rtt_lp.Simplex.Dense in
  let dense_pivots = Rtt_lp.Simplex.pivot_count () - dn0 in
  Rtt_lp.Simplex.engine := engine0;
  Rtt_lp.Simplex.warmstart_enabled := warm0;
  let same =
    List.for_all2
      (fun (a : Lp_relax.solution) (b : Lp_relax.solution) ->
        Rat.equal a.Lp_relax.makespan b.Lp_relax.makespan
        && Rat.equal a.Lp_relax.budget_used b.Lp_relax.budget_used
        && Array.for_all2 Rat.equal a.Lp_relax.flow b.Lp_relax.flow
        && Array.for_all2 Rat.equal a.Lp_relax.times b.Lp_relax.times)
      sparse_sols dense_sols
  in
  let ratio = dense_t /. max 1e-9 sparse_t in
  List.iteri
    (fun i b ->
      let s = List.nth sparse_sols i in
      Format.printf "budget %d: LP makespan %s, budget used %s@." b
        (Rat.to_string s.Lp_relax.makespan)
        (Rat.to_string s.Lp_relax.budget_used))
    budgets;
  Format.printf
    "measured: sparse %.3fs (%d pivots) vs dense %.3fs (%d pivots) -> %.1fx; answers identical: %b@."
    sparse_t sparse_pivots dense_t dense_pivots ratio same;
  verdict "E16" (same && sparse_pivots = dense_pivots && ratio >= 3.0)

(* ------------------------------------------------------------------ *)
(* A1: ablation - the three reuse regimes of Questions 1.1-1.3        *)

let a1 () =
  section "A1" "Ablation: reuse regimes (none / over paths / global) for the same allocations";
  Format.printf
    "paper: Question 1.3 (path reuse) is the contribution; Questions 1.1 (none) and 1.2 (global)@.";
  Format.printf
    "       frame it. Budgets must satisfy global <= paths <= none; the gaps show what path@.";
  Format.printf "       reuse recovers without a central memory manager.@.";
  let ok = ref true in
  Format.printf "%10s | %8s | %8s | %8s | %8s@." "instance" "alloc" "none" "paths" "global";
  List.iter
    (fun (label, g) ->
      let p = Problem.of_race_dag g Problem.Binary in
      let alloc =
        Array.map (fun d -> min 4 (Duration.max_useful_resource d)) p.Problem.durations
      in
      let b = Reuse.budgets p alloc in
      if not (b.Reuse.global <= b.Reuse.over_paths && b.Reuse.over_paths <= b.Reuse.none) then
        ok := false;
      Format.printf "%10s | %8d | %8d | %8d | %8d@." label (Array.fold_left ( + ) 0 alloc)
        b.Reuse.none b.Reuse.over_paths b.Reuse.global)
    [
      ("chain-hubs", hub_instance (rng_of 71) ~hubs:4 ~fan:6);
      ("wide-hubs", hub_instance (rng_of 72) ~hubs:2 ~fan:12);
      ("dense-er", Gen.erdos_renyi (rng_of 73) ~n:24 ~edge_prob:0.5);
      ("layered", Gen.layered (rng_of 74) ~layers:5 ~width:8 ~edge_prob:0.8);
    ];
  (* random sweep *)
  let violations = ref 0 in
  for seed = 1 to 50 do
    let rng = rng_of (seed + 4000) in
    let g = Gen.erdos_renyi rng ~n:(6 + Random.State.int rng 10) ~edge_prob:0.3 in
    let p = Problem.of_race_dag g Problem.Binary in
    let alloc =
      Array.map
        (fun d ->
          let m = Duration.max_useful_resource d in
          if m = 0 then 0 else Random.State.int rng (m + 1))
        p.Problem.durations
    in
    let b = Reuse.budgets p alloc in
    if not (b.Reuse.global <= b.Reuse.over_paths && b.Reuse.over_paths <= b.Reuse.none) then
      incr violations
  done;
  Format.printf "measured: ordering global <= paths <= none held on 50/50 random allocations (%d violations)@."
    !violations;
  verdict "A1" (!ok && !violations = 0)

(* ------------------------------------------------------------------ *)
(* A2: algorithm shoot-out - exact vs LP pipeline vs greedy baseline  *)

let a2 () =
  section "A2" "Shoot-out: exact vs Thm 3.16 LP pipeline vs greedy baseline (binary durations)";
  Format.printf "question: how much of the guarantee gap do the algorithms leave on real instances?@.";
  let n_inst = 25 in
  let sum_opt = ref 0 and sum_bb = ref 0 and sum_greedy = ref 0 in
  let bb_wins = ref 0 and greedy_wins = ref 0 and ties = ref 0 in
  let bb_over = ref 0 in
  for seed = 1 to n_inst do
    let rng = rng_of (seed + 31000) in
    let g =
      if seed mod 2 = 0 then Gen.erdos_renyi rng ~n:(5 + Random.State.int rng 3) ~edge_prob:0.4
      else hub_instance rng ~hubs:(1 + Random.State.int rng 2) ~fan:(5 + Random.State.int rng 5)
    in
    let p = Problem.of_race_dag g Problem.Binary in
    let budget = 2 + Random.State.int rng 6 in
    let opt = (engine_exact p ~budget).Engine.makespan in
    let bb = Binary_bicriteria.min_makespan p ~budget in
    let gr = (Greedy.min_makespan p ~budget).Greedy.makespan in
    sum_opt := !sum_opt + opt;
    sum_bb := !sum_bb + bb.Binary_bicriteria.makespan;
    sum_greedy := !sum_greedy + gr;
    if bb.Binary_bicriteria.budget_used > budget then incr bb_over;
    if bb.Binary_bicriteria.makespan < gr then incr bb_wins
    else if gr < bb.Binary_bicriteria.makespan then incr greedy_wins
    else incr ties
  done;
  Format.printf "measured over %d instances (makespan totals): exact %d | LP (4/3,14/5) %d | greedy %d@."
    n_inst !sum_opt !sum_bb !sum_greedy;
  Format.printf "measured head-to-head: LP wins %d, greedy wins %d, ties %d; LP exceeded budget on %d (allowed: 4/3 inflation)@."
    !bb_wins !greedy_wins !ties !bb_over;
  (* shape: both heuristics stay close to OPT on average (well under the
     proven worst-case factors) *)
  let avg_ratio sum = float_of_int sum /. float_of_int !sum_opt in
  Format.printf "measured average makespan ratio vs exact: LP %.3f, greedy %.3f@."
    (avg_ratio !sum_bb) (avg_ratio !sum_greedy);
  verdict "A2" (avg_ratio !sum_bb <= 2.8 && avg_ratio !sum_greedy >= 1.0)

(* ------------------------------------------------------------------ *)
(* A3: bounded processors - Brent/Graham view of an optimized instance *)

let a3 () =
  section "A3" "Bounded processors: list-scheduling the optimized Figure 4/5 instance";
  Format.printf "context: Observation 1.1 assumes unbounded processors; this is the finite-p view@.";
  let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
  let opt = engine_exact p ~budget:2 in
  let w = Array.fold_left ( + ) 0 (Schedule.durations_at p opt.Engine.allocation) in
  Format.printf "instance: Figure 4/5 with optimal 2-unit allocation (T_inf = %d, W = %d)@."
    opt.Engine.makespan w;
  Format.printf "%6s | %8s | %18s@." "p" "T_p" "Graham bound W/p+T_inf";
  let ok = ref true in
  List.iter
    (fun (k, tp) ->
      let bound = (w / k) + opt.Engine.makespan in
      if tp > bound || tp < opt.Engine.makespan then ok := false;
      Format.printf "%6d | %8d | %18d@." k tp bound)
    (Processors.speedup_curve p opt.Engine.allocation ~processors:[ 1; 2; 4; 8; 16 ]);
  verdict "A3" !ok

(* ------------------------------------------------------------------ *)
(* A4: the whole tradeoff curve - exact vs approximate frontier       *)

let a4 () =
  section "A4" "Pareto frontier: the full space-time curve, exact vs LP-approximate";
  Format.printf "context: the paper optimizes single points; the frontier is the user-facing object@.";
  let p = Problem.of_race_dag (hub_instance (rng_of 81) ~hubs:2 ~fan:8) Problem.Binary in
  let ex = Pareto.exact p in
  let ap = Pareto.approximate p in
  Format.printf "%8s | %14s | %14s@." "budget" "exact makespan" "approx makespan";
  let ok = ref true in
  List.iter2
    (fun (e : Pareto.point) (a : Pareto.point) ->
      Format.printf "%8d | %14d | %14d@." e.Pareto.budget e.Pareto.makespan a.Pareto.makespan;
      (* the approximation is never better where its real cost fits the budget *)
      if
        Schedule.min_budget p a.Pareto.allocation <= e.Pareto.budget
        && a.Pareto.makespan < e.Pareto.makespan
      then ok := false)
    ex ap;
  let knees = Pareto.knees ex in
  Format.printf "measured: %d knee points (budgets where buying more space actually helps): %s@."
    (List.length knees)
    (String.concat ", " (List.map (fun (k : Pareto.point) -> string_of_int k.Pareto.budget) knees));
  verdict "A4" !ok

(* ------------------------------------------------------------------ *)
(* A5: how much does path reuse actually save? (Q1.1 vs Q1.3)         *)

let a5 () =
  section "A5" "Reuse dividend: no-reuse optimum vs path-reuse optimum at equal budgets";
  Format.printf
    "context: Question 1.1 is the classic discrete TCTP; Question 1.3 adds reuse over paths.@.";
  Format.printf "         The makespan gap at equal budget is what the paper's model buys.@.";
  Format.printf "%12s | %8s | %16s | %16s@." "instance" "budget" "no-reuse OPT" "path-reuse OPT";
  let ok = ref true in
  let show label p budget =
    let nr = (Nonreusable.exact p ~budget).Exact.makespan in
    let r = (engine_exact p ~budget).Engine.makespan in
    if r > nr then ok := false;
    Format.printf "%12s | %8d | %16d | %16d@." label budget nr r
  in
  (* deep chains of hubs: reuse shines *)
  List.iter
    (fun hubs ->
      let p = Problem.of_race_dag (hub_instance (rng_of (90 + hubs)) ~hubs ~fan:8) Problem.Binary in
      show (Printf.sprintf "%d-hub chain" hubs) p 4)
    [ 1; 2; 3; 4 ];
  (* a single wide fan: reuse has nothing to chain, the regimes tie *)
  let single = Problem.of_race_dag (hub_instance (rng_of 95) ~hubs:1 ~fan:12) Problem.Binary in
  show "single fan" single 4;
  verdict "A5" !ok

(* ------------------------------------------------------------------ *)
(* T1: batch-service throughput - worker pool and result cache        *)

let online_cores () =
  match Unix.open_process_in "getconf _NPROCESSORS_ONLN 2>/dev/null" with
  | exception _ -> 1
  | ic -> (
      let line = try input_line ic with End_of_file -> "" in
      match (Unix.close_process_in ic, int_of_string_opt (String.trim line)) with
      | _, Some n when n > 0 -> n
      | _ -> 1)

let bench_spool =
  let counter = ref 0 in
  fun tag ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "rtt_bench_%s_%d_%d" tag (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    dir

(* a flat fan the branch-and-bound has to sweat over, plus an
   i-dependent constant tail so the 16 instances have 16 digests *)
let throughput_instance i =
  let g = Dag.create () in
  let s = Dag.add_vertex ~label:"s" g in
  let fan = List.init 8 (fun _ -> Dag.add_vertex g) in
  let hub = Dag.add_vertex g in
  List.iter
    (fun v ->
      Dag.add_edge g s v;
      Dag.add_edge g v hub)
    fan;
  let prev = ref hub in
  for _ = 0 to i do
    let v = Dag.add_vertex g in
    Dag.add_edge g !prev v;
    prev := v
  done;
  Problem.make g ~durations:(fun v ->
      if List.mem v fan then Duration.make (List.init 3 (fun r -> (r, 10 - r)))
      else Duration.constant 1)

let fill_throughput_spool spool =
  List.init 16 (fun i ->
      let name = Printf.sprintf "job_%02d.rtt" i in
      Io.write_file (Filename.concat spool name) (throughput_instance i);
      name)

let t1 () =
  section "T1" "Batch service: pooled drain throughput and the content-addressed result cache";
  let open Rtt_service in
  let cores = online_cores () in
  Format.printf "workload: 16 distinct instances per run; detected %d core(s)@." cores;
  let run ?cache_dir workers =
    let spool = bench_spool (Printf.sprintf "w%d" workers) in
    let jobs = fill_throughput_spool spool in
    let cfg =
      {
        (Supervisor.default_config ~spool) with
        workers;
        cache_dir;
        sleep = false;
        budget = 3;
      }
    in
    let t0 = Unix.gettimeofday () in
    let code = Supervisor.run cfg in
    let dt = Unix.gettimeofday () -. t0 in
    (spool, jobs, code, dt)
  in
  let ok = ref true in
  Format.printf "%8s | %9s | %9s | %8s@." "workers" "seconds" "jobs/sec" "exit";
  let rates =
    List.map
      (fun workers ->
        let _, jobs, code, dt = run workers in
        if code <> Supervisor.drained_exit_code then ok := false;
        let rate = float_of_int (List.length jobs) /. max 1e-9 dt in
        Format.printf "%8d | %9.3f | %9.1f | %8d@." workers dt rate code;
        (workers, rate))
      [ 1; 2; 4 ]
  in
  (* pooled and sequential runs must agree result-for-result *)
  let spool_seq, jobs, code_seq, _ = run 1 in
  let spool_par, _, code_par, _ = run 4 in
  if code_seq <> 0 || code_par <> 0 then ok := false;
  List.iter
    (fun job ->
      let strip kvs = List.filter (fun (k, _) -> k <> "attempt") kvs in
      match
        ( Supervisor.read_result ~spool:spool_seq ~job,
          Supervisor.read_result ~spool:spool_par ~job )
      with
      | Some a, Some b when strip a = strip b -> ()
      | _ ->
          ok := false;
          Format.printf "DIVERGED: %s differs between --workers 1 and --workers 4@." job)
    jobs;
  Format.printf "measured: --workers 4 results identical to --workers 1 on all %d jobs: %b@."
    (List.length jobs) !ok;
  (* the cache: a freshly populated cache serves a duplicate spool
     entirely from disk, with zero engine fuel *)
  let cache = Filename.concat (bench_spool "cache") "cas" in
  let _, _, code_warm, _ = run ~cache_dir:cache 4 in
  let spool_dup = bench_spool "dup" in
  let dup_jobs = fill_throughput_spool spool_dup in
  let cfg_dup =
    {
      (Supervisor.default_config ~spool:spool_dup) with
      workers = 4;
      cache_dir = Some cache;
      sleep = false;
      budget = 3;
    }
  in
  let t0 = Unix.gettimeofday () in
  let code_dup = Supervisor.run cfg_dup in
  let dt_dup = Unix.gettimeofday () -. t0 in
  let hits =
    List.length
      (List.filter
         (fun r ->
           match r.Journal.event with Journal.Done { cached = true; _ } -> true | _ -> false)
         (Journal.replay ~spool:spool_dup))
  in
  if code_warm <> 0 || code_dup <> 0 || hits <> List.length dup_jobs then ok := false;
  Format.printf "measured: duplicate spool re-run: %d/%d cache hits in %.3fs (%.1f jobs/sec)@." hits
    (List.length dup_jobs) dt_dup
    (float_of_int (List.length dup_jobs) /. max 1e-9 dt_dup);
  (* the >= 2x speedup gate only means something with >= 4 real cores;
     on smaller machines the table above is informational *)
  let rate_of w = try List.assoc w rates with Not_found -> 0.0 in
  let speedup = rate_of 4 /. max 1e-9 (rate_of 1) in
  Format.printf "measured: jobs/sec speedup at 4 workers vs 1: %.2fx (gated only when cores >= 4)@."
    speedup;
  if cores >= 4 then begin
    if speedup < 2.0 then ok := false
  end
  else
    Format.printf "skipped:  speedup gate needs >= 4 cores, detected %d — table is informational@."
      cores;
  verdict "T1" !ok

(* ------------------------------------------------------------------ *)
(* S1: sessions — 10-mutation warm re-solve vs cold solves            *)

let s1 () =
  section "S1" "Sessions: 10-mutation warm re-solve vs cold solves (exact rung)";
  Format.printf
    "claim: a session's warm re-solve returns the cold answer byte for byte, for >= 2x less fuel@.";
  Format.printf
    "workload: hub-heavy race DAG, binary durations; 10 set-budget mutations sweeping budget 1..10@.";
  let module Session = Rtt_session.Session in
  let spool = bench_spool "s1" in
  let rng = rng_of 6364136 in
  let g = hub_instance rng ~hubs:2 ~fan:8 in
  let p = Problem.of_race_dag g Problem.Binary in
  let store = Session.create_store ~spool in
  let must = function Ok v -> v | Error m -> failwith m in
  let t = must (Session.open_ store "bench-s1") in
  ignore (must (Session.mutate t (Session.Seed (Io.to_string p))));
  let ok = ref true in
  let warm_fuel = ref 0 and cold_fuel = ref 0 in
  let warm_secs = ref 0.0 and cold_secs = ref 0.0 in
  Format.printf "%6s | %10s | %10s | %s@." "budget" "cold fuel" "warm fuel" "identical";
  for budget = 1 to 10 do
    ignore (must (Session.mutate t (Session.Set_budget budget)));
    let t0 = Unix.gettimeofday () in
    let w =
      match Session.solve ~policy:[ Policy.Exact ] t with
      | Ok w -> w
      | Error e -> failwith (Error.to_string e)
    in
    warm_secs := !warm_secs +. (Unix.gettimeofday () -. t0);
    warm_fuel := !warm_fuel + w.Session.success.Engine.fuel_spent;
    let t1 = Unix.gettimeofday () in
    let c = engine_exact p ~budget in
    cold_secs := !cold_secs +. (Unix.gettimeofday () -. t1);
    cold_fuel := !cold_fuel + c.Engine.fuel_spent;
    let same = String.equal w.Session.rendered (Session.cold_render p c) in
    if not same then ok := false;
    Format.printf "%6d | %10d | %10d | %s%s@." budget c.Engine.fuel_spent
      w.Session.success.Engine.fuel_spent
      (if same then "yes" else "NO")
      (if w.Session.warm then "" else "  (first solve: cold)")
  done;
  Session.close store t;
  let ratio = float_of_int !cold_fuel /. float_of_int (max 1 !warm_fuel) in
  Format.printf
    "measured: 10 cold solves %d fuel (%.3fs); session %d fuel (%.3fs); fuel speedup %.2fx@."
    !cold_fuel !cold_secs !warm_fuel !warm_secs ratio;
  verdict "S1" (!ok && ratio >= 2.0)

(* ------------------------------------------------------------------ *)
(* perf: Bechamel micro-benchmarks                                     *)

let perf () =
  section "PERF" "Bechamel micro-benchmarks (P1-P6)";
  let open Bechamel in
  let rng = rng_of 1 in
  (* P1 simplex / LP relaxation *)
  let p_mid = random_step_instance (rng_of 11) ~n:8 in
  let tr_mid = Transform.of_problem p_mid in
  (* P2 min-flow *)
  let p_flow = Problem.of_race_dag (Gen.erdos_renyi (rng_of 12) ~n:40 ~edge_prob:0.2) Problem.Binary in
  let alloc_flow = Array.map (fun d -> min 2 (Duration.max_useful_resource d)) p_flow.Problem.durations in
  (* P3 SP DP *)
  let sp_tree =
    Sp.map
      (fun _ -> Binary_split.to_duration ~work:(5 + Random.State.int rng 40))
      (Gen.random_sp (rng_of 13) ~leaves:40 ~series_bias:0.5)
  in
  (* P4 bi-criteria end to end *)
  let p_small = random_step_instance (rng_of 14) ~n:5 in
  (* P5 reducer sim *)
  let arrivals = List.init 4096 (fun i -> i mod 7) in
  (* P6 exact solver *)
  let p_exact = Problem.of_race_dag (Gen.erdos_renyi (rng_of 15) ~n:6 ~edge_prob:0.4) Problem.Binary in
  let tests =
    Test.make_grouped ~name:"rtt"
      [
        Test.make ~name:"P1 lp-relaxation (n=8)"
          (Staged.stage (fun () -> ignore (Lp_relax.min_makespan tr_mid ~budget:4)));
        Test.make ~name:"P2 min-flow (n=40)"
          (Staged.stage (fun () -> ignore (Schedule.min_budget p_flow alloc_flow)));
        Test.make ~name:"P3 sp-dp (m=40, B=100)"
          (Staged.stage (fun () -> ignore (Sp_exact.makespan_table sp_tree ~budget:100)));
        Test.make ~name:"P4 bicriteria end-to-end (n=5)"
          (Staged.stage (fun () -> ignore (Bicriteria.min_makespan p_small ~budget:3 ~alpha:Rat.half)));
        Test.make ~name:"P5 reducer-sim (4096 updates, h=5)"
          (Staged.stage (fun () ->
               ignore (Reducer_sim.finish_time ~arrivals (Reducer_sim.Binary { height = 5 }))));
        Test.make ~name:"P6 exact via engine (n=6)"
          (Staged.stage (fun () ->
               ignore (Engine.solve ~policy:[ Policy.Exact ] p_exact ~budget:3)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ ns ] ->
          let r2 = match Analyze.OLS.r_square est with Some r -> r | None -> nan in
          Format.printf "%-42s %14.1f ns/run   (r2 %.3f)@." name ns r2
      | _ -> Format.printf "%-42s (no estimate)@." name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

let all_experiments =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6); ("E7", e7); ("E8", e8);
    ("E9", e9); ("E10", e10); ("E11", e11); ("E12", e12); ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16);
    ("A1", a1); ("A2", a2); ("A3", a3); ("A4", a4); ("A5", a5); ("T1", t1); ("S1", s1); ("perf", perf);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let flags, args = List.partition (fun a -> String.length a > 2 && String.sub a 0 2 = "--") args in
  List.iter
    (function
      | "--json" -> json_chan := Some (open_out json_path)
      | "--no-float-warmstart" -> Rtt_lp.Simplex.warmstart_enabled := false
      | f ->
          Printf.eprintf "unknown flag %s (known: --json, --no-float-warmstart)\n" f;
          exit 2)
    flags;
  let selected =
    match args with [] -> all_experiments | _ -> List.filter (fun (id, _) -> List.mem id args) all_experiments
  in
  Format.printf
    "Reproduction harness: Das et al., SPAA 2019 (resource-time tradeoff with reuse over paths)@.";
  List.iter (fun (_, f) -> f ()) selected;
  Format.printf "@.%s@."
    (if !failures = 0 then "ALL EXPERIMENT SHAPES REPRODUCED"
     else Printf.sprintf "%d EXPERIMENT(S) DIVERGED" !failures);
  (match !json_chan with
  | Some oc ->
      close_out oc;
      Format.printf "wrote %s@." json_path;
      (* timestamped history + a stable `latest` name, so a CI artifact
         shelf (or a human diffing two runs) never races the next run
         overwriting BENCH_5.json *)
      (try
         let body =
           let ic = open_in_bin json_path in
           Fun.protect
             ~finally:(fun () -> close_in_noerr ic)
             (fun () -> really_input_string ic (in_channel_length ic))
         in
         let tm = Unix.gmtime (Unix.time ()) in
         let stamped =
           Printf.sprintf "bench-%04d%02d%02d-%02d%02d%02d.json" (tm.Unix.tm_year + 1900)
             (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
         in
         let write path =
           let oc = open_out_bin path in
           Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc body)
         in
         write stamped;
         (try Sys.remove "bench-latest.json" with Sys_error _ -> ());
         (try Unix.symlink stamped "bench-latest.json"
          with Unix.Unix_error _ -> write "bench-latest.json");
         Format.printf "wrote %s (and bench-latest.json)@." stamped
       with Sys_error _ | Unix.Unix_error _ -> ())
  | None -> ());
  exit (if !failures = 0 then 0 else 1)
